//! The unified metrics registry.
//!
//! A [`Registry`] is an ordered list of `name → value` pairs that every
//! subsystem contributes to (engine counters, cache stats, store/oplog
//! stats, replica health, stage histograms). It replaces ad-hoc
//! string-concatenation JSON: the snapshot is built field by field,
//! duplicate names are rejected eagerly, and the rendered JSON is
//! schema-stable — same fields, same order, every time.

use dbdedup_util::stats::LogHistogram;

/// One metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A counter or integer gauge.
    U64(u64),
    /// A ratio or derived gauge, rendered with four decimal places.
    F64(f64),
}

/// An ordered, duplicate-free set of named metrics. See module docs.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    fields: Vec<(String, MetricValue)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, name: &str, value: MetricValue) {
        assert!(!self.fields.iter().any(|(n, _)| n == name), "duplicate metric name: {name}");
        self.fields.push((name.to_string(), value));
    }

    /// Adds an integer counter/gauge. Panics on a duplicate name.
    pub fn set_u64(&mut self, name: &str, value: u64) {
        self.push(name, MetricValue::U64(value));
    }

    /// Adds a float gauge. Panics on a duplicate name.
    pub fn set_f64(&mut self, name: &str, value: f64) {
        self.push(name, MetricValue::F64(value));
    }

    /// Adds the standard percentile breakdown of a latency histogram
    /// under `prefix` (`prefix.count`, `.p50`, `.p95`, `.p99`, `.p999`,
    /// `.max` — nanoseconds).
    pub fn set_histogram(&mut self, prefix: &str, hist: &LogHistogram) {
        self.set_u64(&format!("{prefix}.count"), hist.count());
        self.set_u64(&format!("{prefix}.p50"), hist.quantile(0.50));
        self.set_u64(&format!("{prefix}.p95"), hist.quantile(0.95));
        self.set_u64(&format!("{prefix}.p99"), hist.quantile(0.99));
        self.set_u64(&format!("{prefix}.p999"), hist.quantile(0.999));
        self.set_u64(&format!("{prefix}.max"), hist.max());
    }

    /// The field names, in insertion (schema) order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(n, _)| n.as_str())
    }

    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Renders the registry as one flat JSON object. Integer values are
    /// rendered verbatim; floats with four decimal places (matching the
    /// legacy `MetricsSnapshot::to_json` precision).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            match value {
                MetricValue::U64(v) => out.push_str(&v.to_string()),
                MetricValue::F64(v) => {
                    if v.is_finite() {
                        out.push_str(&format!("{v:.4}"));
                    } else {
                        // JSON has no NaN/Inf; pin to null.
                        out.push_str("null");
                    }
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_is_preserved() {
        let mut r = Registry::new();
        r.set_u64("zebra", 1);
        r.set_f64("alpha", 0.5);
        r.set_u64("mid", 2);
        let keys: Vec<&str> = r.keys().collect();
        assert_eq!(keys, vec!["zebra", "alpha", "mid"]);
        assert_eq!(r.to_json(), "{\"zebra\":1,\"alpha\":0.5000,\"mid\":2}");
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_are_rejected() {
        let mut r = Registry::new();
        r.set_u64("x", 1);
        r.set_f64("x", 2.0);
    }

    #[test]
    fn histogram_breakdown_keys() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let mut r = Registry::new();
        r.set_histogram("stage.chunk", &h);
        let keys: Vec<&str> = r.keys().collect();
        assert_eq!(
            keys,
            vec![
                "stage.chunk.count",
                "stage.chunk.p50",
                "stage.chunk.p95",
                "stage.chunk.p99",
                "stage.chunk.p999",
                "stage.chunk.max"
            ]
        );
        assert_eq!(r.get("stage.chunk.count"), Some(MetricValue::U64(1000)));
        assert_eq!(r.get("stage.chunk.max"), Some(MetricValue::U64(1000)));
    }

    #[test]
    fn non_finite_floats_render_null() {
        let mut r = Registry::new();
        r.set_f64("nan", f64::NAN);
        r.set_f64("inf", f64::INFINITY);
        assert_eq!(r.to_json(), "{\"nan\":null,\"inf\":null}");
        crate::json::parse(&r.to_json()).expect("null-pinned floats still parse");
    }

    #[test]
    fn json_round_trips_through_parser() {
        let mut r = Registry::new();
        r.set_u64("a", u64::MAX);
        r.set_f64("b", 0.1234);
        let parsed = crate::json::parse(&r.to_json()).unwrap();
        let obj = parsed.as_obj().unwrap();
        assert_eq!(obj.len(), 2);
        assert_eq!(obj[0].0, "a");
        assert_eq!(obj[1].0, "b");
    }
}
