//! Deterministic fault injection for crash/corruption testing.
//!
//! A [`FaultPlan`] scripts what goes wrong and when, keyed by the store's
//! *write-operation index* (every physical segment write — entry frames
//! and segment headers alike — increments the counter). A [`FaultInjector`]
//! executes the plan: it can tear a write short, flip a bit, fail with an
//! `io::Error`, or simulate a crash after which every subsequent write is
//! silently swallowed. Plans are plain data built from a seed, so a failing
//! test reproduces from its seed alone.
//!
//! The injector sits at the single choke-point through which the record
//! store (and the replication transport) push bytes, which keeps the
//! simulated failure surface identical to the real one: whatever the
//! kernel could have done to a `write(2)` mid-crash, the plan can do.

use dbdedup_util::dist::SplitMix64;
use dbdedup_util::hash::fx::FxHashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One scripted failure, attached to a specific write-op index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Only the first `keep` bytes of the write reach the file (torn
    /// write, as a crash mid-`write(2)` produces).
    ShortWrite {
        /// Bytes that survive.
        keep: u32,
    },
    /// Flip bit `bit` of the byte at `pos` (both reduced modulo the
    /// write's length) — silent media corruption.
    BitFlip {
        /// Byte position (mod write length).
        pos: u64,
        /// Bit index 0–7.
        bit: u8,
    },
    /// The write fails with `io::ErrorKind::Other` and nothing reaches
    /// the file — a transient I/O error the caller sees.
    IoError,
    /// Simulated crash: this write and every later one are silently
    /// dropped (the process keeps running but the "disk" is frozen).
    Crash,
}

/// A scripted schedule of faults, keyed by write-op index (0-based).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: FxHashMap<u64, FaultKind>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at write-op `op`, replacing any previous fault
    /// there.
    pub fn fault_at(mut self, op: u64, kind: FaultKind) -> Self {
        self.faults.insert(op, kind);
        self
    }

    /// Schedules a crash at write-op `op`: that write and all later ones
    /// are silently dropped.
    pub fn crash_at_write(self, op: u64) -> Self {
        self.fault_at(op, FaultKind::Crash)
    }

    /// Schedules `count` random bit flips over the first `op_range`
    /// write-ops, drawn deterministically from `seed`.
    pub fn seeded_bit_flips(mut self, seed: u64, op_range: u64, count: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..count {
            let op = rng.next_below(op_range.max(1));
            let pos = rng.next_u64();
            let bit = (rng.next_u64() % 8) as u8;
            self.faults.insert(op, FaultKind::BitFlip { pos, bit });
        }
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// What the injector did to a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The (possibly bit-flipped) buffer should be written in full.
    Proceed,
    /// Write only the first `n` bytes, then treat the file as crashed.
    Truncated(usize),
    /// Write nothing; pretend success (post-crash silence).
    Dropped,
}

/// Executes a [`FaultPlan`] against a stream of writes.
///
/// Thread-safe; shared via `Arc` between a store and a test harness so the
/// test can observe how far the write stream got.
#[derive(Debug)]
pub struct FaultInjector {
    plan: Mutex<FaultPlan>,
    next_op: AtomicU64,
    crashed: AtomicBool,
    injected: AtomicU64,
}

impl FaultInjector {
    /// Creates an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan: Mutex::new(plan),
            next_op: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            injected: AtomicU64::new(0),
        }
    }

    /// Applies the plan to one write. May mutate `buf` (bit flips), and
    /// returns how much of it should reach the file — or an error the
    /// caller must surface.
    pub fn on_write(&self, buf: &mut [u8]) -> std::io::Result<WriteOutcome> {
        let op = self.next_op.fetch_add(1, Ordering::SeqCst);
        if self.crashed.load(Ordering::SeqCst) {
            return Ok(WriteOutcome::Dropped);
        }
        let fault = self
            .plan
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .faults
            .get(&op)
            .copied();
        match fault {
            None => Ok(WriteOutcome::Proceed),
            Some(FaultKind::BitFlip { pos, bit }) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                if !buf.is_empty() {
                    let at = (pos % buf.len() as u64) as usize;
                    buf[at] ^= 1 << (bit % 8);
                }
                Ok(WriteOutcome::Proceed)
            }
            Some(FaultKind::ShortWrite { keep }) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                // A torn write is a crash signature: freeze the disk after.
                self.crashed.store(true, Ordering::SeqCst);
                Ok(WriteOutcome::Truncated((keep as usize).min(buf.len())))
            }
            Some(FaultKind::IoError) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                Err(std::io::Error::other("injected I/O fault"))
            }
            Some(FaultKind::Crash) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                self.crashed.store(true, Ordering::SeqCst);
                Ok(WriteOutcome::Dropped)
            }
        }
    }

    /// Write-ops seen so far.
    pub fn writes_seen(&self) -> u64 {
        self.next_op.load(Ordering::SeqCst)
    }

    /// Faults actually triggered so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Whether the simulated disk has crashed (all writes now dropped).
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Clears the crashed state: writes flow again. On a transport
    /// injector this models a network partition healing — the frames
    /// swallowed while crashed stay lost (the replica re-converges via
    /// oplog-cursor catch-up), but new traffic gets through.
    pub fn heal(&self) {
        self.crashed.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_passes_everything_through() {
        let inj = FaultInjector::new(FaultPlan::new());
        let mut buf = vec![1u8, 2, 3];
        for _ in 0..10 {
            assert_eq!(inj.on_write(&mut buf).unwrap(), WriteOutcome::Proceed);
        }
        assert_eq!(buf, vec![1, 2, 3]);
        assert_eq!(inj.writes_seen(), 10);
        assert_eq!(inj.faults_injected(), 0);
    }

    #[test]
    fn bit_flip_mutates_exactly_one_bit() {
        let plan = FaultPlan::new().fault_at(1, FaultKind::BitFlip { pos: 2, bit: 3 });
        let inj = FaultInjector::new(plan);
        let mut a = vec![0u8; 4];
        inj.on_write(&mut a).unwrap();
        assert_eq!(a, vec![0; 4], "op 0 untouched");
        inj.on_write(&mut a).unwrap();
        assert_eq!(a, vec![0, 0, 1 << 3, 0]);
    }

    #[test]
    fn crash_swallows_all_later_writes() {
        let inj = FaultInjector::new(FaultPlan::new().crash_at_write(1));
        let mut b = vec![9u8];
        assert_eq!(inj.on_write(&mut b).unwrap(), WriteOutcome::Proceed);
        assert_eq!(inj.on_write(&mut b).unwrap(), WriteOutcome::Dropped);
        assert_eq!(inj.on_write(&mut b).unwrap(), WriteOutcome::Dropped);
        assert!(inj.crashed());
    }

    #[test]
    fn short_write_truncates_then_crashes() {
        let plan = FaultPlan::new().fault_at(0, FaultKind::ShortWrite { keep: 5 });
        let inj = FaultInjector::new(plan);
        let mut b = vec![0u8; 64];
        assert_eq!(inj.on_write(&mut b).unwrap(), WriteOutcome::Truncated(5));
        assert_eq!(inj.on_write(&mut b).unwrap(), WriteOutcome::Dropped);
    }

    #[test]
    fn heal_restores_write_flow_after_crash() {
        let inj = FaultInjector::new(FaultPlan::new().crash_at_write(0));
        let mut b = vec![1u8];
        assert_eq!(inj.on_write(&mut b).unwrap(), WriteOutcome::Dropped);
        assert_eq!(inj.on_write(&mut b).unwrap(), WriteOutcome::Dropped);
        inj.heal();
        assert!(!inj.crashed());
        assert_eq!(inj.on_write(&mut b).unwrap(), WriteOutcome::Proceed);
    }

    #[test]
    fn io_error_is_surfaced() {
        let inj = FaultInjector::new(FaultPlan::new().fault_at(0, FaultKind::IoError));
        assert!(inj.on_write(&mut [0u8; 1]).is_err());
        // Not a crash: the next write proceeds (transient error).
        assert_eq!(inj.on_write(&mut [0u8; 1]).unwrap(), WriteOutcome::Proceed);
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::new().seeded_bit_flips(42, 100, 5);
        let b = FaultPlan::new().seeded_bit_flips(42, 100, 5);
        assert_eq!(a.len(), b.len());
        let inj_a = FaultInjector::new(a);
        let inj_b = FaultInjector::new(b);
        let mut buf_a = vec![0u8; 32];
        let mut buf_b = vec![0u8; 32];
        for _ in 0..100 {
            let _ = inj_a.on_write(&mut buf_a);
            let _ = inj_b.on_write(&mut buf_b);
        }
        assert_eq!(buf_a, buf_b);
        assert_eq!(inj_a.faults_injected(), inj_b.faults_injected());
    }
}
