//! `blockz` — a from-scratch LZ77 block compressor in the Snappy class.
//!
//! The paper pairs dbDedup with MongoDB's Snappy block compression and
//! shows the two compose (dedup removes *cross-record* redundancy, block
//! compression removes *intra-block* redundancy). `blockz` reproduces
//! Snappy's structural profile: greedy hash-table matching, byte-oriented
//! output, no entropy coding, ~1.5–2.5× on text at memory-bandwidth-class
//! speed.
//!
//! ## Format
//!
//! ```text
//! block   := varint(uncompressed_len) op*
//! op      := 0x00 varint(len) byte{len}     ; literal run
//!          | 0x01 varint(dist) varint(len)  ; copy from `dist` bytes back
//! ```
//!
//! Copies may overlap their own output (`dist < len`), which encodes runs.

use dbdedup_util::codec::{ByteReader, ByteWriter, CodecError};

/// Minimum match length worth a copy op.
const MIN_MATCH: usize = 4;
/// Hash table size (log2).
const HASH_BITS: u32 = 14;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data` into a fresh buffer.
///
/// Worst case (incompressible data) the output is the input plus a few
/// bytes of framing — same guarantee class as Snappy.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(data.len() / 2 + 16);
    w.put_varint(data.len() as u64);
    if data.is_empty() {
        return w.into_vec();
    }

    let mut table = vec![u32::MAX; 1 << HASH_BITS];
    let mut lit_start = 0usize;
    let mut i = 0usize;

    // Snappy-style skip acceleration: the longer we go without a match,
    // the faster we skip.
    let mut skip_credit = 32usize;

    while i + MIN_MATCH <= data.len() {
        let h = hash4(data, i);
        let cand = table[h];
        table[h] = i as u32;

        let matched = cand != u32::MAX && {
            let c = cand as usize;
            data[c..c + MIN_MATCH] == data[i..i + MIN_MATCH]
        };

        if matched {
            let c = cand as usize;
            // Extend the match forward.
            let mut len = MIN_MATCH;
            while i + len < data.len() && data[c + len] == data[i + len] {
                len += 1;
            }
            if lit_start < i {
                emit_literal(&mut w, &data[lit_start..i]);
            }
            w.put_u8(0x01);
            w.put_varint((i - c) as u64);
            w.put_varint(len as u64);
            // Seed the table inside the match so subsequent data can
            // reference it (sample every 2 to bound cost).
            let mut p = i + 1;
            let stop = (i + len).min(data.len() - MIN_MATCH);
            while p < stop {
                table[hash4(data, p)] = p as u32;
                p += 2;
            }
            i += len;
            lit_start = i;
            skip_credit = 32;
        } else {
            skip_credit += 1;
            i += skip_credit / 32;
        }
    }
    if lit_start < data.len() {
        emit_literal(&mut w, &data[lit_start..]);
    }
    w.into_vec()
}

fn emit_literal(w: &mut ByteWriter, lit: &[u8]) {
    w.put_u8(0x00);
    w.put_len_prefixed(lit);
}

/// Error from [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockzError {
    /// The framing or varints were malformed.
    Codec(CodecError),
    /// A copy op referenced data before the start of the output.
    BadCopy {
        /// Requested back-distance.
        dist: u64,
        /// Output produced so far.
        produced: usize,
    },
    /// The output did not match the declared uncompressed length.
    LengthMismatch {
        /// Declared length.
        expected: usize,
        /// Produced length.
        actual: usize,
    },
}

impl std::fmt::Display for BlockzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockzError::Codec(e) => write!(f, "malformed block: {e}"),
            BlockzError::BadCopy { dist, produced } => {
                write!(f, "copy distance {dist} exceeds produced {produced} bytes")
            }
            BlockzError::LengthMismatch { expected, actual } => {
                write!(f, "expected {expected} bytes, produced {actual}")
            }
        }
    }
}

impl std::error::Error for BlockzError {}

impl From<CodecError> for BlockzError {
    fn from(e: CodecError) -> Self {
        BlockzError::Codec(e)
    }
}

/// Largest uncompressed block size `decompress` will accept. Record and
/// page payloads are far smaller; anything beyond this in the header is
/// corruption, and bounding it keeps untrusted headers from driving
/// multi-gigabyte allocations.
pub const MAX_UNCOMPRESSED: usize = 256 << 20;

/// Decompresses a `blockz` block.
pub fn decompress(block: &[u8]) -> Result<Vec<u8>, BlockzError> {
    let mut r = ByteReader::new(block);
    let expected = r.get_varint()? as usize;
    if expected > MAX_UNCOMPRESSED {
        return Err(BlockzError::LengthMismatch { expected, actual: 0 });
    }
    // Pre-allocate conservatively: the header is untrusted until the ops
    // actually produce the bytes.
    let mut out: Vec<u8> = Vec::with_capacity(expected.min(1 << 20));
    while !r.is_empty() {
        match r.get_u8()? {
            0x00 => {
                let lit = r.get_len_prefixed()?;
                out.extend_from_slice(lit);
            }
            0x01 => {
                let dist = r.get_varint()?;
                let len = r.get_varint()? as usize;
                if dist == 0 || dist > out.len() as u64 {
                    return Err(BlockzError::BadCopy { dist, produced: out.len() });
                }
                if out.len() + len > expected {
                    // Ops overrunning the declared length are corrupt; stop
                    // before materializing unbounded output.
                    return Err(BlockzError::LengthMismatch { expected, actual: out.len() + len });
                }
                let start = out.len() - dist as usize;
                // Overlapping copies must be byte-at-a-time.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            t => return Err(CodecError::InvalidTag(t).into()),
        }
    }
    if out.len() != expected {
        return Err(BlockzError::LengthMismatch { expected, actual: out.len() });
    }
    Ok(out)
}

/// Convenience: compression ratio achieved on `data` (original/compressed).
pub fn ratio(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    data.len() as f64 / compress(data).len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdedup_util::dist::SplitMix64;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        decompress(&c).expect("valid block")
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(roundtrip(b""), b"");
        assert_eq!(roundtrip(b"a"), b"a");
        assert_eq!(roundtrip(b"abc"), b"abc");
    }

    #[test]
    fn text_compresses() {
        let text: String = (0..200)
            .map(|i| format!("Line {i}: the database compresses repeated words and phrases. "))
            .collect();
        let data = text.as_bytes();
        assert_eq!(roundtrip(data), data);
        let r = ratio(data);
        assert!(r > 1.5, "text ratio {r}");
    }

    #[test]
    fn runs_compress_hard() {
        let data = vec![0x55u8; 100_000];
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < 200, "run compressed to {} bytes", c.len());
    }

    #[test]
    fn random_data_bounded_expansion() {
        let mut rng = SplitMix64::new(1);
        let data: Vec<u8> = (0..50_000).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < data.len() + data.len() / 100 + 32, "expanded to {}", c.len());
    }

    #[test]
    fn overlapping_copy_roundtrip() {
        // "abcabcabc..." forces dist < len copies.
        let data: Vec<u8> = b"abc".iter().cycle().take(10_000).copied().collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn structured_binary() {
        // Repeating 24-byte structs with a counter — typical page content.
        let mut data = Vec::new();
        for i in 0..2_000u64 {
            data.extend_from_slice(&i.to_le_bytes());
            data.extend_from_slice(b"field-value-pad!");
        }
        assert_eq!(roundtrip(&data), data);
        assert!(ratio(&data) > 2.0);
    }

    #[test]
    fn corrupt_copy_rejected() {
        let mut w = dbdedup_util::codec::ByteWriter::new();
        w.put_varint(10);
        w.put_u8(0x01);
        w.put_varint(5); // dist 5 with nothing produced
        w.put_varint(10);
        assert!(matches!(
            decompress(w.as_slice()),
            Err(BlockzError::BadCopy { dist: 5, produced: 0 })
        ));
    }

    #[test]
    fn corrupt_length_rejected() {
        let mut c = compress(b"hello world hello world");
        // Truncate ops: drop the last byte.
        c.pop();
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn ratio_of_empty_is_one() {
        assert_eq!(ratio(b""), 1.0);
    }

    #[test]
    fn hostile_length_header_rejected_without_allocation() {
        // Regression (found by proptest): a garbage header declaring a
        // ~19 GB block must fail cleanly, not abort on allocation.
        let mut w = dbdedup_util::codec::ByteWriter::new();
        w.put_varint(19_365_625_432);
        w.put_u8(0x00);
        w.put_len_prefixed(b"tiny");
        assert!(matches!(decompress(w.as_slice()), Err(BlockzError::LengthMismatch { .. })));
    }

    #[test]
    fn runaway_copy_stopped_at_declared_length() {
        // A copy op trying to synthesize more than the declared output is
        // corruption and must stop early.
        let mut w = dbdedup_util::codec::ByteWriter::new();
        w.put_varint(10);
        w.put_u8(0x00);
        w.put_len_prefixed(b"ab");
        w.put_u8(0x01);
        w.put_varint(1); // dist
        w.put_varint(1_000_000); // len ≫ declared
        assert!(matches!(decompress(w.as_slice()), Err(BlockzError::LengthMismatch { .. })));
    }
}
