//! The log-structured record store.
//!
//! Records are appended to segment files and located through an in-memory
//! directory (`RecordId` → segment/offset). Updates append a fresh entry
//! and re-point the directory; the superseded bytes become dead space that
//! [`RecordStore::compact`] reclaims. Each entry stores its payload either
//! **raw** or as a **backward delta** tagged with the base record it
//! decodes against — the on-disk half of dbDedup's two-way encoding.
//!
//! Optional per-entry block compression (`blockz`) stands in for the
//! page-level Snappy compression of the paper's MongoDB/WiredTiger setup.

use crate::blockcache::{BlockCache, BlockCacheStats, BlockKey};
use crate::blockz;
use bytes::Bytes;
use dbdedup_util::codec::{ByteReader, ByteWriter};
use dbdedup_util::hash::fx::FxHashMap;
use dbdedup_util::ids::RecordId;
use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// How a stored payload reconstructs the record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageForm {
    /// The payload is the record's bytes.
    Raw,
    /// The payload is a backward delta; decoding requires `base`.
    Delta {
        /// The record this delta decodes against.
        base: RecordId,
    },
}

/// A record as returned by [`RecordStore::get`]: payload plus its form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredRecord {
    /// Raw-vs-delta disposition.
    pub form: StorageForm,
    /// The stored payload (decompressed if block compression applied).
    pub payload: Bytes,
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Bytes per segment file before rotating.
    pub segment_bytes: u64,
    /// Block-cache budget for entry reads (the buffer-pool stand-in);
    /// 0 disables caching.
    pub block_cache_bytes: usize,
    /// Apply `blockz` block compression to payloads (kept only when it
    /// actually shrinks the payload).
    pub block_compression: bool,
    /// `fsync` after every append (off by default, like the paper's
    /// journaling-disabled setup).
    pub fsync: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 64 << 20,
            block_cache_bytes: 8 << 20,
            block_compression: false,
            fsync: false,
        }
    }
}

/// Store errors.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// An on-disk entry failed to parse.
    Corrupt(String),
    /// The record is not in the store.
    NotFound(RecordId),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store entry: {m}"),
            StoreError::NotFound(id) => write!(f, "record {id} not found"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Cumulative I/O counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct IoStats {
    /// Entry reads served from disk.
    pub reads: u64,
    /// Entry writes (appends).
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
}

#[derive(Debug, Clone, Copy)]
struct Loc {
    seg: u32,
    off: u64,
    len: u32,
    form: StorageForm,
}

struct Inner {
    directory: FxHashMap<RecordId, Loc>,
    readers: Vec<Option<File>>,
    active: File,
    active_idx: u32,
    active_off: u64,
    /// Live stored payload bytes (post-compression) — the denominator of
    /// every storage compression ratio.
    live_payload_bytes: u64,
    /// Live payload bytes before block compression.
    live_uncompressed_bytes: u64,
    dead_bytes: u64,
    io: IoStats,
    cache: BlockCache,
}

/// See module docs.
pub struct RecordStore {
    dir: PathBuf,
    config: StoreConfig,
    inner: Mutex<Inner>,
    own_dir: bool,
}

impl std::fmt::Debug for RecordStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordStore").field("dir", &self.dir).finish_non_exhaustive()
    }
}

fn segment_path(dir: &Path, idx: u32) -> PathBuf {
    dir.join(format!("seg{idx:06}.dat"))
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl RecordStore {
    /// Opens (creating if needed) a store in `dir`. An existing store is
    /// recovered by scanning its segments.
    pub fn open(dir: impl Into<PathBuf>, config: StoreConfig) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut store = Self {
            inner: Mutex::new(Inner {
                directory: FxHashMap::default(),
                readers: Vec::new(),
                active: OpenOptions::new()
                    .create(true)
                    .append(true)
                    .read(true)
                    .open(segment_path(&dir, 0))?,
                active_idx: 0,
                active_off: 0,
                live_payload_bytes: 0,
                live_uncompressed_bytes: 0,
                dead_bytes: 0,
                io: IoStats::default(),
                cache: BlockCache::new(config.block_cache_bytes),
            }),
            dir,
            config,
            own_dir: false,
        };
        store.recover()?;
        Ok(store)
    }

    /// Opens a store in a fresh unique temporary directory, removed on drop.
    pub fn open_temp(config: StoreConfig) -> Result<Self, StoreError> {
        let dir = std::env::temp_dir().join(format!(
            "dbdedup-store-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let mut s = Self::open(dir, config)?;
        s.own_dir = true;
        Ok(s)
    }

    fn recover(&mut self) -> Result<(), StoreError> {
        let inner = self.inner.get_mut();
        // Replay every segment in order; the directory converges to the
        // latest entry per id, tombstones delete.
        let mut live_sizes: FxHashMap<RecordId, (u64, u64)> = FxHashMap::default();
        let mut idx = 0u32;
        loop {
            let path = segment_path(&self.dir, idx);
            if !path.exists() {
                break;
            }
            let mut f = File::open(&path)?;
            let mut buf = Vec::new();
            f.read_to_end(&mut buf)?;
            let mut off = 0usize;
            while off + 4 <= buf.len() {
                let len =
                    u32::from_le_bytes(buf[off..off + 4].try_into().expect("len 4")) as usize;
                if off + 4 + len > buf.len() {
                    break; // torn tail write: ignore
                }
                let entry = &buf[off + 4..off + 4 + len];
                let parsed = parse_entry(entry)
                    .map_err(|e| StoreError::Corrupt(format!("seg {idx} off {off}: {e}")))?;
                let loc =
                    Loc { seg: idx, off: off as u64, len: (len + 4) as u32, form: parsed.form };
                if parsed.tombstone {
                    if let Some(old) = inner.directory.remove(&parsed.id) {
                        inner.dead_bytes += u64::from(old.len);
                    }
                    live_sizes.remove(&parsed.id);
                    inner.dead_bytes += (len + 4) as u64;
                } else {
                    if let Some(old) = inner.directory.insert(parsed.id, loc) {
                        inner.dead_bytes += u64::from(old.len);
                    }
                    live_sizes.insert(
                        parsed.id,
                        (parsed.payload.len() as u64, u64::from(parsed.uncompressed_len)),
                    );
                }
                off += 4 + len;
            }
            idx += 1;
        }
        inner.live_payload_bytes = live_sizes.values().map(|&(p, _)| p).sum();
        inner.live_uncompressed_bytes = live_sizes.values().map(|&(_, u)| u).sum();
        if idx > 0 {
            inner.active_idx = idx - 1;
            inner.active = OpenOptions::new()
                .create(true)
                .append(true)
                .read(true)
                .open(segment_path(&self.dir, inner.active_idx))?;
            inner.active_off = inner.active.metadata()?.len();
            inner.readers = (0..idx).map(|_| None).collect();
        }
        Ok(())
    }

    /// Writes (or overwrites) `id` with `payload` stored under `form`.
    pub fn put(&self, id: RecordId, form: StorageForm, payload: &[u8]) -> Result<(), StoreError> {
        let entry = encode_entry(id, form, payload, self.config.block_compression, false);
        self.append_entry(id, entry, payload.len() as u64, false)
    }

    /// Removes `id`. Idempotent; a tombstone is appended so recovery sees
    /// the deletion.
    pub fn delete(&self, id: RecordId) -> Result<(), StoreError> {
        let entry = encode_entry(id, StorageForm::Raw, &[], false, true);
        self.append_entry(id, entry, 0, true)
    }

    fn append_entry(
        &self,
        id: RecordId,
        entry: Vec<u8>,
        uncompressed_len: u64,
        tombstone: bool,
    ) -> Result<(), StoreError> {
        let form = parse_entry(&entry).map_err(StoreError::Corrupt)?.form;
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if inner.active_off >= self.config.segment_bytes {
            inner.active_idx += 1;
            inner.active = OpenOptions::new()
                .create(true)
                .append(true)
                .read(true)
                .open(segment_path(&self.dir, inner.active_idx))?;
            inner.active_off = 0;
        }
        let total = entry.len() + 4;
        let mut framed = Vec::with_capacity(total);
        framed.extend_from_slice(&(entry.len() as u32).to_le_bytes());
        framed.extend_from_slice(&entry);
        inner.active.write_all(&framed)?;
        if self.config.fsync {
            inner.active.sync_data()?;
        }
        let loc =
            Loc { seg: inner.active_idx, off: inner.active_off, len: total as u32, form };
        inner.active_off += total as u64;
        inner.io.writes += 1;
        inner.io.write_bytes += total as u64;

        // Directory + accounting.
        let payload_len = entry_payload_len(&entry).expect("just encoded") as u64;
        if let Some(old) = inner.directory.remove(&id) {
            inner.dead_bytes += u64::from(old.len);
            let (old_payload, old_uncompressed) = read_live_sizes(inner, &self.dir, old)?;
            inner.live_payload_bytes -= old_payload;
            inner.live_uncompressed_bytes -= old_uncompressed;
        }
        if tombstone {
            inner.dead_bytes += total as u64;
        } else {
            inner.directory.insert(id, loc);
            inner.live_payload_bytes += payload_len;
            inner.live_uncompressed_bytes += uncompressed_len;
        }
        Ok(())
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: RecordId) -> bool {
        self.inner.lock().directory.contains_key(&id)
    }

    /// Reads `id`.
    pub fn get(&self, id: RecordId) -> Result<StoredRecord, StoreError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let loc = *inner.directory.get(&id).ok_or(StoreError::NotFound(id))?;
        let raw = read_entry_bytes(inner, &self.dir, loc)?;
        let parsed = parse_entry(&raw[4..]).map_err(StoreError::Corrupt)?;
        debug_assert_eq!(parsed.id, id);
        let payload = if parsed.compressed {
            Bytes::from(
                blockz::decompress(parsed.payload)
                    .map_err(|e| StoreError::Corrupt(e.to_string()))?,
            )
        } else {
            Bytes::copy_from_slice(parsed.payload)
        };
        Ok(StoredRecord { form: parsed.form, payload })
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.inner.lock().directory.len()
    }

    /// Whether the store has no live records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live stored payload bytes, post block-compression — the storage
    /// footprint figures report.
    pub fn stored_payload_bytes(&self) -> u64 {
        self.inner.lock().live_payload_bytes
    }

    /// Live payload bytes before block compression (isolates dedup's own
    /// contribution from `blockz`'s).
    pub fn stored_uncompressed_bytes(&self) -> u64 {
        self.inner.lock().live_uncompressed_bytes
    }

    /// Dead (superseded) bytes awaiting compaction.
    pub fn dead_bytes(&self) -> u64 {
        self.inner.lock().dead_bytes
    }

    /// Cumulative I/O counters. With the block cache enabled, `reads`
    /// counts only cache misses that reached the file.
    pub fn io_stats(&self) -> IoStats {
        self.inner.lock().io
    }

    /// Block-cache (buffer pool) counters.
    pub fn block_cache_stats(&self) -> BlockCacheStats {
        self.inner.lock().cache.stats()
    }

    /// Lists every live record with its storage form (raw vs delta+base),
    /// without touching disk. Drives engine chain recovery after restart.
    pub fn live_forms(&self) -> Vec<(RecordId, StorageForm)> {
        self.inner.lock().directory.iter().map(|(&id, loc)| (id, loc.form)).collect()
    }

    /// Rewrites live entries into fresh segments, dropping dead space.
    pub fn compact(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let ids: Vec<RecordId> = inner.directory.keys().copied().collect();
        let new_idx = inner.active_idx + 1;
        let mut new_file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(segment_path(&self.dir, new_idx))?;
        let mut new_off = 0u64;
        let mut new_dir = FxHashMap::default();
        for id in ids {
            let loc = inner.directory[&id];
            let raw = read_entry_bytes(inner, &self.dir, loc)?;
            new_file.write_all(&raw)?;
            new_dir.insert(id, Loc { seg: new_idx, off: new_off, len: loc.len, form: loc.form });
            new_off += u64::from(loc.len);
        }
        new_file.sync_data()?;
        // Swap in the new segment; remove the old files.
        for i in 0..new_idx {
            let _ = fs::remove_file(segment_path(&self.dir, i));
        }
        inner.readers = (0..=new_idx).map(|_| None).collect();
        inner.active = new_file;
        inner.active_idx = new_idx;
        inner.active_off = new_off;
        inner.directory = new_dir;
        inner.dead_bytes = 0;
        inner.cache.clear();
        Ok(())
    }
}

impl Drop for RecordStore {
    fn drop(&mut self) {
        if self.own_dir {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

fn read_entry_bytes(
    inner: &mut Inner,
    dir: &Path,
    loc: Loc,
) -> Result<std::sync::Arc<Vec<u8>>, StoreError> {
    let key = BlockKey { seg: loc.seg, off: loc.off };
    if let Some(cached) = inner.cache.get(key) {
        return Ok(cached);
    }
    let mut buf = vec![0u8; loc.len as usize];
    // Reads use a dedicated handle per segment (the append handle's cursor
    // must stay at the tail).
    ensure_reader(inner, dir, loc.seg)?;
    let f = inner.readers[loc.seg as usize].as_mut().expect("reader opened");
    f.seek(SeekFrom::Start(loc.off))?;
    f.read_exact(&mut buf)?;
    inner.io.reads += 1;
    inner.io.read_bytes += u64::from(loc.len);
    let arc = std::sync::Arc::new(buf);
    inner.cache.insert(key, std::sync::Arc::clone(&arc));
    Ok(arc)
}

fn ensure_reader(inner: &mut Inner, dir: &Path, seg: u32) -> Result<(), StoreError> {
    if inner.readers.len() <= seg as usize {
        inner.readers.resize_with(seg as usize + 1, || None);
    }
    if inner.readers[seg as usize].is_none() {
        inner.readers[seg as usize] = Some(File::open(segment_path(dir, seg))?);
    }
    Ok(())
}

fn read_live_sizes(inner: &mut Inner, dir: &Path, loc: Loc) -> Result<(u64, u64), StoreError> {
    let raw = read_entry_bytes(inner, dir, loc)?;
    let parsed = parse_entry(&raw[4..]).map_err(StoreError::Corrupt)?;
    Ok((parsed.payload.len() as u64, parsed.uncompressed_len as u64))
}

struct ParsedEntry<'a> {
    id: RecordId,
    form: StorageForm,
    compressed: bool,
    tombstone: bool,
    uncompressed_len: u32,
    payload: &'a [u8],
}

/// Entry layout (after the u32 frame length):
/// `id:u64 | flags:u8 | [base:u64 if delta] | uncompressed_len:varint | payload`
/// flags: bit0 delta, bit1 compressed, bit2 tombstone.
fn encode_entry(
    id: RecordId,
    form: StorageForm,
    payload: &[u8],
    try_compress: bool,
    tombstone: bool,
) -> Vec<u8> {
    let mut flags = 0u8;
    let compressed_payload;
    let mut use_compressed = false;
    if try_compress && !payload.is_empty() {
        compressed_payload = blockz::compress(payload);
        if compressed_payload.len() < payload.len() {
            use_compressed = true;
        }
    } else {
        compressed_payload = Vec::new();
    }
    if let StorageForm::Delta { .. } = form {
        flags |= 0b001;
    }
    if use_compressed {
        flags |= 0b010;
    }
    if tombstone {
        flags |= 0b100;
    }
    let body: &[u8] = if use_compressed { &compressed_payload } else { payload };
    let mut w = ByteWriter::with_capacity(body.len() + 32);
    w.put_u64(id.get());
    w.put_u8(flags);
    if let StorageForm::Delta { base } = form {
        w.put_u64(base.get());
    }
    w.put_varint(payload.len() as u64);
    w.put_bytes(body);
    w.into_vec()
}

fn parse_entry(entry: &[u8]) -> Result<ParsedEntry<'_>, String> {
    let mut r = ByteReader::new(entry);
    let id = RecordId(r.get_u64().map_err(|e| e.to_string())?);
    let flags = r.get_u8().map_err(|e| e.to_string())?;
    let form = if flags & 0b001 != 0 {
        StorageForm::Delta { base: RecordId(r.get_u64().map_err(|e| e.to_string())?) }
    } else {
        StorageForm::Raw
    };
    let uncompressed_len = r.get_varint().map_err(|e| e.to_string())? as u32;
    let pos = r.position();
    let payload = &entry[pos..];
    Ok(ParsedEntry {
        id,
        form,
        compressed: flags & 0b010 != 0,
        tombstone: flags & 0b100 != 0,
        uncompressed_len,
        payload,
    })
}

fn entry_payload_len(entry: &[u8]) -> Result<usize, StoreError> {
    let p = parse_entry(entry).map_err(StoreError::Corrupt)?;
    Ok(p.payload.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> RecordStore {
        RecordStore::open_temp(StoreConfig::default()).expect("temp store")
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store();
        s.put(RecordId(1), StorageForm::Raw, b"hello").unwrap();
        let r = s.get(RecordId(1)).unwrap();
        assert_eq!(r.form, StorageForm::Raw);
        assert_eq!(&r.payload[..], b"hello");
    }

    #[test]
    fn delta_form_preserved() {
        let s = store();
        s.put(RecordId(2), StorageForm::Delta { base: RecordId(9) }, b"delta-bytes").unwrap();
        let r = s.get(RecordId(2)).unwrap();
        assert_eq!(r.form, StorageForm::Delta { base: RecordId(9) });
        assert_eq!(&r.payload[..], b"delta-bytes");
    }

    #[test]
    fn overwrite_repoints_and_accounts() {
        let s = store();
        s.put(RecordId(1), StorageForm::Raw, &[0xa; 1000]).unwrap();
        let live1 = s.stored_payload_bytes();
        s.put(RecordId(1), StorageForm::Raw, &[0xb; 10]).unwrap();
        assert_eq!(&s.get(RecordId(1)).unwrap().payload[..], &[0xb; 10]);
        assert_eq!(s.stored_payload_bytes(), 10);
        assert!(s.dead_bytes() >= live1, "old entry became dead space");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn missing_record_errors() {
        let s = store();
        assert!(matches!(s.get(RecordId(404)), Err(StoreError::NotFound(RecordId(404)))));
    }

    #[test]
    fn delete_then_get_fails() {
        let s = store();
        s.put(RecordId(5), StorageForm::Raw, b"gone soon").unwrap();
        s.delete(RecordId(5)).unwrap();
        assert!(!s.contains(RecordId(5)));
        assert!(matches!(s.get(RecordId(5)), Err(StoreError::NotFound(_))));
        assert_eq!(s.stored_payload_bytes(), 0);
    }

    #[test]
    fn block_compression_shrinks_text() {
        let cfg = StoreConfig { block_compression: true, ..Default::default() };
        let s = RecordStore::open_temp(cfg).unwrap();
        let text = "compressible text content, repeated. ".repeat(200);
        s.put(RecordId(1), StorageForm::Raw, text.as_bytes()).unwrap();
        assert_eq!(&s.get(RecordId(1)).unwrap().payload[..], text.as_bytes());
        assert!(s.stored_payload_bytes() < text.len() as u64 / 2);
        assert_eq!(s.stored_uncompressed_bytes(), text.len() as u64);
    }

    #[test]
    fn incompressible_payload_stored_raw() {
        let cfg = StoreConfig { block_compression: true, ..Default::default() };
        let s = RecordStore::open_temp(cfg).unwrap();
        let mut rng = dbdedup_util::dist::SplitMix64::new(1);
        let data: Vec<u8> = (0..10_000).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        s.put(RecordId(1), StorageForm::Raw, &data).unwrap();
        assert_eq!(&s.get(RecordId(1)).unwrap().payload[..], &data[..]);
        assert_eq!(s.stored_payload_bytes(), data.len() as u64);
    }

    #[test]
    fn segment_rotation() {
        let cfg = StoreConfig { segment_bytes: 4096, ..Default::default() };
        let s = RecordStore::open_temp(cfg).unwrap();
        for i in 0..100u64 {
            s.put(RecordId(i), StorageForm::Raw, &vec![i as u8; 500]).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(&s.get(RecordId(i)).unwrap().payload[..], &vec![i as u8; 500][..]);
        }
    }

    #[test]
    fn recovery_restores_directory() {
        let dir = std::env::temp_dir().join(format!("dbdedup-recover-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            s.put(RecordId(1), StorageForm::Raw, b"one").unwrap();
            s.put(RecordId(2), StorageForm::Delta { base: RecordId(1) }, b"two-delta").unwrap();
            s.put(RecordId(1), StorageForm::Raw, b"one-v2").unwrap();
            s.delete(RecordId(2)).unwrap();
        }
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            assert_eq!(s.len(), 1);
            assert_eq!(&s.get(RecordId(1)).unwrap().payload[..], b"one-v2");
            assert!(!s.contains(RecordId(2)));
            // Store remains writable after recovery.
            s.put(RecordId(3), StorageForm::Raw, b"three").unwrap();
            assert_eq!(&s.get(RecordId(3)).unwrap().payload[..], b"three");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let s = store();
        for i in 0..50u64 {
            s.put(RecordId(i), StorageForm::Raw, &vec![1u8; 1000]).unwrap();
        }
        for i in 0..25u64 {
            s.delete(RecordId(i)).unwrap();
        }
        for i in 25..50u64 {
            s.put(RecordId(i), StorageForm::Raw, &[2u8; 10]).unwrap();
        }
        assert!(s.dead_bytes() > 0);
        s.compact().unwrap();
        assert_eq!(s.dead_bytes(), 0);
        for i in 25..50u64 {
            assert_eq!(&s.get(RecordId(i)).unwrap().payload[..], &vec![2u8; 10][..]);
        }
        assert_eq!(s.len(), 25);
        // Still writable post-compaction.
        s.put(RecordId(99), StorageForm::Raw, b"after").unwrap();
        assert_eq!(&s.get(RecordId(99)).unwrap().payload[..], b"after");
    }

    #[test]
    fn io_stats_accumulate() {
        let s = store();
        s.put(RecordId(1), StorageForm::Raw, b"x").unwrap();
        s.get(RecordId(1)).unwrap();
        let io = s.io_stats();
        assert_eq!(io.writes, 1);
        assert_eq!(io.reads, 1);
        assert!(io.write_bytes > 0 && io.read_bytes > 0);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let s = store();
        s.put(RecordId(7), StorageForm::Raw, b"").unwrap();
        assert_eq!(&s.get(RecordId(7)).unwrap().payload[..], b"");
    }
}
