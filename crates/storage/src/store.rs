//! The log-structured record store.
//!
//! Records are appended to segment files and located through an in-memory
//! directory (`RecordId` → segment/offset). Updates append a fresh entry
//! and re-point the directory; the superseded bytes become dead space that
//! [`RecordStore::compact`] reclaims. Each entry stores its payload either
//! **raw** or as a **backward delta** tagged with the base record it
//! decodes against — the on-disk half of dbDedup's two-way encoding.
//!
//! Optional per-entry block compression (`blockz`) stands in for the
//! page-level Snappy compression of the paper's MongoDB/WiredTiger setup.
//!
//! ## On-disk format (version 2)
//!
//! Every segment opens with a 16-byte header:
//!
//! ```text
//! magic "DBDPSEG\0" (8) | format version u32 LE (4) | crc32(first 12) (4)
//! ```
//!
//! Entries are framed for integrity and resynchronization:
//!
//! ```text
//! marker 0xDB 0x5E (2) | entry len u32 LE (4) | crc32(entry) (4) | entry
//! ```
//!
//! Every read verifies the frame (marker, length, CRC-32) before parsing;
//! a mismatch surfaces as [`StoreError::Corrupt`] and is counted in
//! [`IoStats::verify_failures`], never returned as data.
//!
//! ## Salvage recovery
//!
//! [`RecordStore::open`] never fails hard on a damaged directory. The
//! recovery scan *contains* corruption instead of propagating it:
//!
//! * a frame that fails validation is **quarantined** — the scan skips
//!   forward byte-by-byte until the next position holding a fully valid
//!   frame (marker + in-bounds length + CRC), so one damaged entry in a
//!   sealed segment no longer swallows everything after it;
//! * trailing garbage on the **active** segment (a torn tail from a crash
//!   mid-append) is physically truncated back to the last valid frame;
//! * a sealed segment with a destroyed header is quarantined whole.
//!
//! The result is prefix-consistent: every surviving directory entry points
//! at a frame that verified during the scan, and counts of what was lost
//! are reported via [`RecoveryReport`] and [`IoStats`].

use crate::blockcache::{BlockCache, BlockCacheStats, BlockKey};
use crate::blockz;
use crate::fault::{FaultInjector, WriteOutcome};
use bytes::Bytes;
use dbdedup_util::codec::{ByteReader, ByteWriter};
use dbdedup_util::hash::crc32::crc32;
use dbdedup_util::hash::fx::FxHashMap;
use dbdedup_util::ids::RecordId;
use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Magic prefix of every segment file.
const SEG_MAGIC: &[u8; 8] = b"DBDPSEG\0";
/// Current on-disk format version.
const FORMAT_VERSION: u32 = 2;
/// Segment header: magic + version + header CRC.
const SEG_HDR_LEN: usize = 16;
/// Two-byte frame marker the salvage scan resynchronizes on.
const FRAME_MARKER: [u8; 2] = [0xDB, 0x5E];
/// Frame header: marker + entry length + entry CRC.
const FRAME_HDR: usize = 10;
/// Sanity cap on a single entry; lengths beyond this are treated as
/// corruption during scanning.
const MAX_ENTRY_BYTES: usize = 1 << 30;

/// How a stored payload reconstructs the record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageForm {
    /// The payload is the record's bytes.
    Raw,
    /// The payload is a backward delta; decoding requires `base`.
    Delta {
        /// The record this delta decodes against.
        base: RecordId,
    },
}

/// A record as returned by [`RecordStore::get`]: payload plus its form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredRecord {
    /// Raw-vs-delta disposition.
    pub form: StorageForm,
    /// The stored payload (decompressed if block compression applied).
    pub payload: Bytes,
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Bytes per segment file before rotating.
    pub segment_bytes: u64,
    /// Block-cache budget for entry reads (the buffer-pool stand-in);
    /// 0 disables caching.
    pub block_cache_bytes: usize,
    /// Apply `blockz` block compression to payloads (kept only when it
    /// actually shrinks the payload).
    pub block_compression: bool,
    /// `fsync` after every append (off by default, like the paper's
    /// journaling-disabled setup).
    pub fsync: bool,
    /// Deterministic fault injection applied to every physical segment
    /// write. `None` in production; tests share the injector via `Arc` to
    /// script crashes and corruption. After an injected crash the
    /// in-memory store is a zombie whose directory no longer matches
    /// disk — only the subsequent reopen (recovery) is meaningful.
    pub fault: Option<Arc<FaultInjector>>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 64 << 20,
            block_cache_bytes: 8 << 20,
            block_compression: false,
            fsync: false,
            fault: None,
        }
    }
}

/// Store errors.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// An on-disk entry failed verification or parsing.
    Corrupt(String),
    /// The record is not in the store.
    NotFound(RecordId),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store entry: {m}"),
            StoreError::NotFound(id) => write!(f, "record {id} not found"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Cumulative I/O counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct IoStats {
    /// Entry reads served from disk.
    pub reads: u64,
    /// Entry writes (appends).
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Damaged entries (or entry runs) quarantined — during recovery
    /// scanning or when compaction skips an unreadable record.
    pub quarantined_entries: u64,
    /// Bytes of torn tail physically truncated from active segments
    /// during recovery.
    pub truncated_tail_bytes: u64,
    /// Reads that failed frame verification (marker/length/CRC).
    pub verify_failures: u64,
}

/// One damaged frame (or contiguous damaged run) the opening salvage scan
/// skipped — the structured counterpart of the free-text
/// [`RecoveryReport::notes`], consumed by the engine to emit a `Warn`
/// event per quarantined frame instead of burying the loss in a count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalvagedFrame {
    /// Segment the damage sits in.
    pub segment: u32,
    /// Byte offset the damaged run starts at.
    pub offset: u64,
    /// Bytes the quarantined run covers.
    pub bytes: u64,
}

/// What a recovery scan found and did, per [`RecordStore::open`].
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Segment files scanned.
    pub segments_scanned: u32,
    /// Valid entries replayed into the directory (including tombstones
    /// and superseded versions).
    pub entries_recovered: u64,
    /// Damaged entries (or contiguous damaged runs) skipped.
    pub quarantined_entries: u64,
    /// Bytes covered by quarantined runs.
    pub quarantined_bytes: u64,
    /// Torn-tail bytes truncated from the active segment.
    pub truncated_tail_bytes: u64,
    /// Human-readable notes, one per salvage action.
    pub notes: Vec<String>,
    /// Per-frame detail of every quarantined run, in scan order.
    pub skipped: Vec<SalvagedFrame>,
}

impl RecoveryReport {
    /// Whether the scan salvaged anything (quarantine or truncation).
    pub fn is_clean(&self) -> bool {
        self.quarantined_entries == 0 && self.truncated_tail_bytes == 0
    }
}

/// What a compaction pass accomplished. Marked `#[must_use]` so callers
/// either assert on the numbers or export them through the metrics
/// registry — silently dropping reclamation stats hides regressions.
#[must_use = "compaction stats report reclaimed space; check or export them"]
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Segment files fully processed and emptied.
    pub segments_rewritten: u64,
    /// Physical bytes freed (old segment bytes minus bytes copied forward).
    pub bytes_reclaimed: u64,
    /// Damaged entries skipped (quarantined) instead of copied.
    pub entries_skipped: u64,
    /// Frame bytes examined. A bounded [`RecordStore::compact_step`] can
    /// make real progress mid-segment without completing one; this field
    /// distinguishes that from a genuine no-op.
    pub bytes_scanned: u64,
}

impl CompactStats {
    /// Folds another pass's stats into this one.
    pub fn merge(&mut self, other: CompactStats) {
        self.segments_rewritten += other.segments_rewritten;
        self.bytes_reclaimed += other.bytes_reclaimed;
        self.entries_skipped += other.entries_skipped;
        self.bytes_scanned += other.bytes_scanned;
    }

    /// Whether the pass did nothing at all (no progress possible).
    pub fn is_noop(&self) -> bool {
        self.segments_rewritten == 0
            && self.bytes_reclaimed == 0
            && self.entries_skipped == 0
            && self.bytes_scanned == 0
    }
}

#[derive(Debug, Clone, Copy)]
struct Loc {
    seg: u32,
    off: u64,
    len: u32,
    form: StorageForm,
    /// The live frame carries the degraded tag (admitted under overload,
    /// awaiting out-of-line re-dedup). Mirrors on-disk flag bit 3, so the
    /// degraded work-list survives restart through the recovery scan.
    degraded: bool,
}

/// Resume point for incremental compaction: which sealed segment is being
/// copied forward and how far the frame scan has progressed.
#[derive(Debug, Clone, Copy)]
struct CompactCursor {
    seg: u32,
    off: u64,
    file_len: u64,
    /// Frame bytes copied forward because they were live.
    live_moved: u64,
    /// Frame bytes copied forward because they were still-needed tombstones.
    carried_tombs: u64,
}

/// Resume point for the integrity scrub: the next position whose live
/// frames still await verification. Persists across bounded
/// [`RecordStore::scrub_step`] slices (the compaction-cursor idiom), so
/// repeated slices walk the whole store segment-at-a-time and then wrap.
#[derive(Debug, Default, Clone, Copy)]
struct ScrubCursor {
    seg: u32,
    off: u64,
}

/// What one bounded verified-scan slice covered, per
/// [`RecordStore::scrub_step`].
#[must_use = "a verify slice names the corrupt records; dropping it loses the damage report"]
#[derive(Debug, Default, Clone)]
pub struct VerifySlice {
    /// Live records whose on-disk frames verified clean.
    pub clean: Vec<RecordId>,
    /// Live records whose on-disk frames failed verification
    /// (marker/length/CRC or unparseable entry).
    pub corrupt: Vec<RecordId>,
    /// Frame bytes read from disk and checked.
    pub bytes_verified: u64,
    /// The cursor wrapped past the last segment: a full pass over every
    /// live frame has completed.
    pub pass_complete: bool,
}

struct Inner {
    directory: FxHashMap<RecordId, Loc>,
    readers: Vec<Option<File>>,
    active: File,
    active_idx: u32,
    active_off: u64,
    /// Live stored payload bytes (post-compression) — the denominator of
    /// every storage compression ratio.
    live_payload_bytes: u64,
    /// Live payload bytes before block compression.
    live_uncompressed_bytes: u64,
    dead_bytes: u64,
    /// Bytes of tombstone frames currently on disk. Subset of
    /// `dead_bytes`; a tombstone can only be dropped once no superseded
    /// put frame for its id remains, so `dead_bytes - tomb_bytes` is the
    /// space compaction can actually reclaim right now.
    tomb_bytes: u64,
    /// Per-id count of superseded put frames still physically on disk.
    /// A tombstone whose id has no stale puts left shadows nothing and is
    /// dropped (not carried) when its segment is compacted.
    stale_puts: FxHashMap<RecordId, u32>,
    cursor: Option<CompactCursor>,
    scrub: ScrubCursor,
    io: IoStats,
    cache: BlockCache,
}

/// See module docs.
pub struct RecordStore {
    dir: PathBuf,
    config: StoreConfig,
    inner: Mutex<Inner>,
    recovery: RecoveryReport,
    own_dir: bool,
}

impl std::fmt::Debug for RecordStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordStore").field("dir", &self.dir).finish_non_exhaustive()
    }
}

fn segment_path(dir: &Path, idx: u32) -> PathBuf {
    dir.join(format!("seg{idx:06}.dat"))
}

fn segment_header() -> [u8; SEG_HDR_LEN] {
    let mut h = [0u8; SEG_HDR_LEN];
    h[..8].copy_from_slice(SEG_MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    let crc = crc32(&h[..12]);
    h[12..16].copy_from_slice(&crc.to_le_bytes());
    h
}

fn header_valid(buf: &[u8]) -> bool {
    buf.len() >= SEG_HDR_LEN
        && &buf[..8] == SEG_MAGIC
        && u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) == FORMAT_VERSION
        && u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) == crc32(&buf[..12])
}

/// Returns the entry length if a fully valid frame (marker, in-bounds
/// length, CRC) begins at `pos`.
fn frame_at(buf: &[u8], pos: usize) -> Option<usize> {
    let rest = buf.len().checked_sub(pos)?;
    if rest < FRAME_HDR || buf[pos..pos + 2] != FRAME_MARKER {
        return None;
    }
    let len = u32::from_le_bytes(buf[pos + 2..pos + 6].try_into().expect("4 bytes")) as usize;
    if len > MAX_ENTRY_BYTES || rest - FRAME_HDR < len {
        return None;
    }
    let crc = u32::from_le_bytes(buf[pos + 6..pos + 10].try_into().expect("4 bytes"));
    let entry = &buf[pos + FRAME_HDR..pos + FRAME_HDR + len];
    (crc32(entry) == crc).then_some(len)
}

fn frame_entry(entry: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(entry.len() + FRAME_HDR);
    framed.extend_from_slice(&FRAME_MARKER);
    framed.extend_from_slice(&(entry.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(entry).to_le_bytes());
    framed.extend_from_slice(entry);
    framed
}

/// The single choke-point through which store bytes reach a file; applies
/// the fault injector when one is configured.
fn fault_write(
    file: &mut File,
    fault: Option<&FaultInjector>,
    bytes: &[u8],
) -> std::io::Result<()> {
    match fault {
        None => file.write_all(bytes),
        Some(inj) => {
            let mut buf = bytes.to_vec();
            match inj.on_write(&mut buf)? {
                WriteOutcome::Proceed => file.write_all(&buf),
                WriteOutcome::Truncated(n) => file.write_all(&buf[..n]),
                WriteOutcome::Dropped => Ok(()),
            }
        }
    }
}

fn truncate_file(path: &Path, len: u64) -> std::io::Result<()> {
    OpenOptions::new().write(true).open(path)?.set_len(len)
}

/// Truncation for the compaction paths: a "crashed" injector means the
/// process is dead, so the destructive half of copy-then-truncate must
/// never land either. (The copies preceding it were silently dropped;
/// truncating the victim anyway would destroy live records.)
fn fault_truncate(path: &Path, len: u64, fault: Option<&FaultInjector>) -> std::io::Result<()> {
    if fault.is_some_and(|inj| inj.crashed()) {
        return Ok(());
    }
    truncate_file(path, len)
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl RecordStore {
    /// Opens (creating if needed) a store in `dir`. An existing store is
    /// recovered by scanning its segments in salvage mode: damaged
    /// entries are quarantined and a torn active tail is truncated, but
    /// the open itself only fails on filesystem errors — never on
    /// corruption.
    pub fn open(dir: impl Into<PathBuf>, config: StoreConfig) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut store = Self {
            inner: Mutex::new(Inner {
                directory: FxHashMap::default(),
                readers: Vec::new(),
                active: OpenOptions::new()
                    .create(true)
                    .append(true)
                    .read(true)
                    .open(segment_path(&dir, 0))?,
                active_idx: 0,
                active_off: 0,
                live_payload_bytes: 0,
                live_uncompressed_bytes: 0,
                dead_bytes: 0,
                tomb_bytes: 0,
                stale_puts: FxHashMap::default(),
                cursor: None,
                scrub: ScrubCursor::default(),
                io: IoStats::default(),
                cache: BlockCache::new(config.block_cache_bytes),
            }),
            dir,
            config,
            recovery: RecoveryReport::default(),
            own_dir: false,
        };
        store.recover()?;
        Ok(store)
    }

    /// Opens a store in a fresh unique temporary directory, removed on drop.
    pub fn open_temp(config: StoreConfig) -> Result<Self, StoreError> {
        let dir = std::env::temp_dir().join(format!(
            "dbdedup-store-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let mut s = Self::open(dir, config)?;
        s.own_dir = true;
        Ok(s)
    }

    /// What the opening recovery scan found and salvaged.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.recovery.clone()
    }

    /// The store's on-disk directory. Sidecar subsystems (the tiered
    /// feature index's run files) key their derived state under it so a
    /// store and its derived files move together.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn recover(&mut self) -> Result<(), StoreError> {
        let mut report = RecoveryReport::default();
        // Replay every segment in order; the directory converges to the
        // latest *valid* entry per id, tombstones delete.
        let mut live_sizes: FxHashMap<RecordId, (u64, u64)> = FxHashMap::default();
        let mut count = 0u32;
        while segment_path(&self.dir, count).exists() {
            count += 1;
        }
        for idx in 0..count {
            let is_active = idx + 1 == count;
            self.scan_segment(idx, is_active, &mut live_sizes, &mut report)?;
        }
        let inner = self.inner.get_mut();
        inner.live_payload_bytes = live_sizes.values().map(|&(p, _)| p).sum();
        inner.live_uncompressed_bytes = live_sizes.values().map(|&(_, u)| u).sum();
        inner.active_idx = count.saturating_sub(1);
        inner.active = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(segment_path(&self.dir, inner.active_idx))?;
        inner.active_off = inner.active.metadata()?.len();
        inner.readers = (0..=inner.active_idx).map(|_| None).collect();
        if inner.active_off == 0 {
            fault_write(&mut inner.active, self.config.fault.as_deref(), &segment_header())?;
            inner.io.writes += 1;
            inner.io.write_bytes += SEG_HDR_LEN as u64;
            inner.active_off = SEG_HDR_LEN as u64;
        }
        self.recovery = report;
        Ok(())
    }

    /// Scans one segment in salvage mode (see module docs).
    fn scan_segment(
        &mut self,
        idx: u32,
        is_active: bool,
        live_sizes: &mut FxHashMap<RecordId, (u64, u64)>,
        report: &mut RecoveryReport,
    ) -> Result<(), StoreError> {
        let path = segment_path(&self.dir, idx);
        let buf = fs::read(&path)?;
        report.segments_scanned += 1;
        if buf.is_empty() {
            return Ok(()); // fresh segment; header written on open
        }
        let inner = self.inner.get_mut();
        if !header_valid(&buf) {
            if is_active {
                // The whole active segment is unparseable (e.g. a crash
                // tore the header write): truncate and rewrite on open.
                truncate_file(&path, 0)?;
                inner.io.truncated_tail_bytes += buf.len() as u64;
                report.truncated_tail_bytes += buf.len() as u64;
                report.notes.push(format!(
                    "seg {idx}: invalid header on active segment; truncated {} bytes",
                    buf.len()
                ));
            } else {
                inner.io.quarantined_entries += 1;
                inner.dead_bytes += buf.len() as u64;
                report.quarantined_entries += 1;
                report.quarantined_bytes += buf.len() as u64;
                report.notes.push(format!(
                    "seg {idx}: invalid header on sealed segment; {} bytes quarantined",
                    buf.len()
                ));
                report.skipped.push(SalvagedFrame {
                    segment: idx,
                    offset: 0,
                    bytes: buf.len() as u64,
                });
            }
            return Ok(());
        }
        let mut pos = SEG_HDR_LEN;
        while pos < buf.len() {
            if let Some(len) = frame_at(&buf, pos) {
                let entry = &buf[pos + FRAME_HDR..pos + FRAME_HDR + len];
                // A CRC-valid frame that still fails to parse means the
                // entry was *written* malformed; quarantine it like any
                // other damage rather than trusting it.
                if let Ok(parsed) = parse_entry(entry) {
                    let loc = Loc {
                        seg: idx,
                        off: pos as u64,
                        len: (FRAME_HDR + len) as u32,
                        form: parsed.form,
                        degraded: parsed.degraded_db.is_some(),
                    };
                    if parsed.tombstone {
                        if let Some(old) = inner.directory.remove(&parsed.id) {
                            inner.dead_bytes += u64::from(old.len);
                            *inner.stale_puts.entry(parsed.id).or_insert(0) += 1;
                        }
                        live_sizes.remove(&parsed.id);
                        inner.dead_bytes += u64::from(loc.len);
                        inner.tomb_bytes += u64::from(loc.len);
                    } else {
                        if let Some(old) = inner.directory.insert(parsed.id, loc) {
                            inner.dead_bytes += u64::from(old.len);
                            *inner.stale_puts.entry(parsed.id).or_insert(0) += 1;
                        }
                        live_sizes.insert(
                            parsed.id,
                            (parsed.payload.len() as u64, u64::from(parsed.uncompressed_len)),
                        );
                    }
                    report.entries_recovered += 1;
                    pos += FRAME_HDR + len;
                    continue;
                }
            }
            // Corruption at `pos`: resynchronize at the next valid frame.
            let start = pos;
            match (start + 1..buf.len()).find(|&q| frame_at(&buf, q).is_some()) {
                Some(q) => {
                    inner.io.quarantined_entries += 1;
                    inner.dead_bytes += (q - start) as u64;
                    report.quarantined_entries += 1;
                    report.quarantined_bytes += (q - start) as u64;
                    report.notes.push(format!(
                        "seg {idx}: quarantined {} damaged bytes at offset {start}",
                        q - start
                    ));
                    report.skipped.push(SalvagedFrame {
                        segment: idx,
                        offset: start as u64,
                        bytes: (q - start) as u64,
                    });
                    pos = q;
                }
                None if is_active => {
                    // Torn tail from a crash mid-append: cut it off so
                    // future appends extend a clean prefix.
                    truncate_file(&path, start as u64)?;
                    let torn = buf.len() - start;
                    inner.io.truncated_tail_bytes += torn as u64;
                    report.truncated_tail_bytes += torn as u64;
                    report.notes.push(format!(
                        "seg {idx}: truncated {torn}-byte torn tail at offset {start}"
                    ));
                    break;
                }
                None => {
                    let run = buf.len() - start;
                    inner.io.quarantined_entries += 1;
                    inner.dead_bytes += run as u64;
                    report.quarantined_entries += 1;
                    report.quarantined_bytes += run as u64;
                    report.notes.push(format!(
                        "seg {idx}: quarantined {run} damaged trailing bytes at offset {start}"
                    ));
                    report.skipped.push(SalvagedFrame {
                        segment: idx,
                        offset: start as u64,
                        bytes: run as u64,
                    });
                    break;
                }
            }
        }
        Ok(())
    }

    /// Writes (or overwrites) `id` with `payload` stored under `form`.
    /// Overwriting a degraded entry clears its tag (the fresh frame has
    /// no degraded flag, and the directory follows the latest frame).
    pub fn put(&self, id: RecordId, form: StorageForm, payload: &[u8]) -> Result<(), StoreError> {
        let entry = encode_entry(id, form, payload, self.config.block_compression, false, None);
        self.append_entry(id, entry, payload.len() as u64, false)
    }

    /// Writes `id` raw and tags the frame as **degraded**: admitted via
    /// the overload pass-through path of logical database `db`, so the
    /// out-of-line re-dedup task can find it again — even after a restart,
    /// since the tag lives in segment metadata and is replayed by the
    /// recovery scan. A later [`RecordStore::put`] clears the tag.
    pub fn put_degraded(&self, id: RecordId, db: &str, payload: &[u8]) -> Result<(), StoreError> {
        let entry = encode_entry(
            id,
            StorageForm::Raw,
            payload,
            self.config.block_compression,
            false,
            Some(db),
        );
        self.append_entry(id, entry, payload.len() as u64, false)
    }

    /// Removes `id`. Idempotent; a tombstone is appended so recovery sees
    /// the deletion.
    pub fn delete(&self, id: RecordId) -> Result<(), StoreError> {
        let entry = encode_entry(id, StorageForm::Raw, &[], false, true, None);
        self.append_entry(id, entry, 0, true)
    }

    fn append_entry(
        &self,
        id: RecordId,
        entry: Vec<u8>,
        uncompressed_len: u64,
        tombstone: bool,
    ) -> Result<(), StoreError> {
        let parsed_head = parse_entry(&entry).map_err(StoreError::Corrupt)?;
        let (form, degraded) = (parsed_head.form, parsed_head.degraded_db.is_some());
        let fault = self.config.fault.as_deref();
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if inner.active_off >= self.config.segment_bytes {
            inner.active_idx += 1;
            inner.active = OpenOptions::new()
                .create(true)
                .append(true)
                .read(true)
                .open(segment_path(&self.dir, inner.active_idx))?;
            fault_write(&mut inner.active, fault, &segment_header())?;
            inner.io.writes += 1;
            inner.io.write_bytes += SEG_HDR_LEN as u64;
            inner.active_off = SEG_HDR_LEN as u64;
        }
        let framed = frame_entry(&entry);
        let total = framed.len();
        fault_write(&mut inner.active, fault, &framed)?;
        if self.config.fsync {
            inner.active.sync_data()?;
        }
        let loc =
            Loc { seg: inner.active_idx, off: inner.active_off, len: total as u32, form, degraded };
        inner.active_off += total as u64;
        inner.io.writes += 1;
        inner.io.write_bytes += total as u64;

        // Directory + accounting.
        let payload_len = entry_payload_len(&entry).expect("just encoded") as u64;
        if let Some(old) = inner.directory.remove(&id) {
            inner.dead_bytes += u64::from(old.len);
            // The superseded put frame stays on disk until compaction; a
            // tombstone for this id must outlive it (see `stale_puts`).
            *inner.stale_puts.entry(id).or_insert(0) += 1;
            // A damaged old entry has unknowable sizes; the overwrite
            // heals the record, so skip the subtraction rather than fail
            // the put.
            if let Some((old_payload, old_uncompressed)) = read_live_sizes(inner, &self.dir, old)? {
                inner.live_payload_bytes = inner.live_payload_bytes.saturating_sub(old_payload);
                inner.live_uncompressed_bytes =
                    inner.live_uncompressed_bytes.saturating_sub(old_uncompressed);
            }
        }
        if tombstone {
            inner.dead_bytes += total as u64;
            inner.tomb_bytes += total as u64;
        } else {
            inner.directory.insert(id, loc);
            inner.live_payload_bytes += payload_len;
            inner.live_uncompressed_bytes += uncompressed_len;
        }
        Ok(())
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: RecordId) -> bool {
        self.inner.lock().directory.contains_key(&id)
    }

    /// Reads `id`, verifying the frame checksum before parsing.
    pub fn get(&self, id: RecordId) -> Result<StoredRecord, StoreError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let loc = *inner.directory.get(&id).ok_or(StoreError::NotFound(id))?;
        let raw = read_entry_bytes(inner, &self.dir, loc)?;
        let parsed = parse_entry(&raw[FRAME_HDR..]).map_err(StoreError::Corrupt)?;
        debug_assert_eq!(parsed.id, id);
        let payload = if parsed.compressed {
            Bytes::from(
                blockz::decompress(parsed.payload)
                    .map_err(|e| StoreError::Corrupt(e.to_string()))?,
            )
        } else {
            Bytes::copy_from_slice(parsed.payload)
        };
        Ok(StoredRecord { form: parsed.form, payload })
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.inner.lock().directory.len()
    }

    /// Whether the store has no live records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live stored payload bytes, post block-compression — the storage
    /// footprint figures report.
    pub fn stored_payload_bytes(&self) -> u64 {
        self.inner.lock().live_payload_bytes
    }

    /// Live payload bytes before block compression (isolates dedup's own
    /// contribution from `blockz`'s).
    pub fn stored_uncompressed_bytes(&self) -> u64 {
        self.inner.lock().live_uncompressed_bytes
    }

    /// Dead (superseded) bytes awaiting compaction.
    pub fn dead_bytes(&self) -> u64 {
        self.inner.lock().dead_bytes
    }

    /// Bytes of tombstone frames currently on disk. These are dead but
    /// not yet reclaimable: a tombstone must outlive every superseded put
    /// frame for its id or recovery would resurrect the record.
    pub fn tombstone_bytes(&self) -> u64 {
        self.inner.lock().tomb_bytes
    }

    /// Dead bytes compaction can actually free right now (dead space
    /// minus still-needed tombstone frames). Background maintenance
    /// quiesces when this reaches zero.
    pub fn reclaimable_dead_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.dead_bytes.saturating_sub(inner.tomb_bytes)
    }

    /// On-disk frame length of `id`'s live entry, if present. Lets the
    /// engine cost deleted-but-referenced records without reading them.
    pub fn entry_len(&self, id: RecordId) -> Option<u64> {
        self.inner.lock().directory.get(&id).map(|loc| u64::from(loc.len))
    }

    /// Where `id`'s live frame sits on disk: `(segment, offset, len)`.
    /// Diagnostic — fault-injection tests use it to aim corruption at a
    /// specific live record rather than at dead bytes.
    pub fn frame_extent(&self, id: RecordId) -> Option<(u32, u64, u32)> {
        self.inner.lock().directory.get(&id).map(|loc| (loc.seg, loc.off, loc.len))
    }

    /// Cumulative I/O counters. With the block cache enabled, `reads`
    /// counts only cache misses that reached the file.
    pub fn io_stats(&self) -> IoStats {
        self.inner.lock().io
    }

    /// The raw on-disk bytes of every segment file in segment order
    /// (the differential equivalence harness compares these across
    /// engines byte for byte). Taken under the store lock, so the view
    /// is consistent between appends; a segment emptied by compaction
    /// reads as an empty vector.
    pub fn segment_bytes(&self) -> Result<Vec<Vec<u8>>, StoreError> {
        let inner = self.inner.lock();
        let mut out = Vec::with_capacity(inner.active_idx as usize + 1);
        for i in 0..=inner.active_idx {
            match fs::read(segment_path(&self.dir, i)) {
                Ok(bytes) => out.push(bytes),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => out.push(Vec::new()),
                Err(e) => return Err(e.into()),
            }
        }
        Ok(out)
    }

    /// Block-cache (buffer pool) counters.
    pub fn block_cache_stats(&self) -> BlockCacheStats {
        self.inner.lock().cache.stats()
    }

    /// Lists every live record with its storage form (raw vs delta+base),
    /// without touching disk. Drives engine chain recovery after restart.
    pub fn live_forms(&self) -> Vec<(RecordId, StorageForm)> {
        self.inner.lock().directory.iter().map(|(&id, loc)| (id, loc.form)).collect()
    }

    /// Whether `id`'s live frame carries the degraded tag (stored raw via
    /// the overload pass-through path and not yet re-deduplicated).
    pub fn is_degraded(&self, id: RecordId) -> bool {
        self.inner.lock().directory.get(&id).map(|loc| loc.degraded).unwrap_or(false)
    }

    /// Every live record still tagged degraded, with the logical database
    /// it was admitted into, sorted by id. This is the crash-recoverable
    /// half of the engine's degraded-set: the tag rides in segment
    /// metadata, so a restart rebuilds the re-dedup work-list from here.
    /// An entry whose frame no longer reads back (quarantined mid-life)
    /// is skipped — anti-entropy owns damaged records, not re-dedup.
    pub fn degraded_records(&self) -> Result<Vec<(RecordId, String)>, StoreError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let tagged: Vec<(RecordId, Loc)> = inner
            .directory
            .iter()
            .filter(|(_, loc)| loc.degraded)
            .map(|(&id, &loc)| (id, loc))
            .collect();
        let mut out = Vec::with_capacity(tagged.len());
        for (id, loc) in tagged {
            let raw = match read_entry_bytes(inner, &self.dir, loc) {
                Ok(raw) => raw,
                Err(StoreError::Corrupt(_)) => continue,
                Err(e) => return Err(e),
            };
            let Ok(parsed) = parse_entry(&raw[FRAME_HDR..]) else { continue };
            let Some(db) = parsed.degraded_db else { continue };
            out.push((id, String::from_utf8_lossy(db).into_owned()));
        }
        out.sort_unstable_by_key(|&(id, _)| id);
        Ok(out)
    }

    /// The logical database `id`'s live degraded-tagged frame was admitted
    /// into, or `None` when the frame is untagged, unreadable, or absent.
    /// The per-id counterpart of [`RecordStore::degraded_records`], used
    /// by the scrub's backlog-consistency check.
    pub fn degraded_db(&self, id: RecordId) -> Result<Option<String>, StoreError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let Some(&loc) = inner.directory.get(&id) else {
            return Ok(None);
        };
        if !loc.degraded {
            return Ok(None);
        }
        let raw = match read_entry_bytes(inner, &self.dir, loc) {
            Ok(raw) => raw,
            Err(StoreError::Corrupt(_)) => return Ok(None),
            Err(e) => return Err(e),
        };
        let Ok(parsed) = parse_entry(&raw[FRAME_HDR..]) else {
            return Ok(None);
        };
        Ok(parsed.degraded_db.map(|db| String::from_utf8_lossy(db).into_owned()))
    }

    /// Rewrites live entries into fresh segments, dropping dead space.
    /// A record whose entry fails verification is quarantined (dropped
    /// from the directory and counted) rather than aborting compaction.
    ///
    /// Stop-the-world: the store is locked for the whole rewrite. The
    /// incremental alternative is [`RecordStore::compact_step`].
    ///
    /// Superseded segment files are **truncated to zero, not removed** —
    /// the recovery scan walks segment indices contiguously from zero,
    /// so removing `seg000000.dat` would make a reopened store blind to
    /// every later segment.
    pub fn compact(&self) -> Result<CompactStats, StoreError> {
        let fault = self.config.fault.as_deref();
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut stats = CompactStats::default();
        let ids: Vec<RecordId> = inner.directory.keys().copied().collect();
        let new_idx = inner.active_idx + 1;
        let mut old_total = 0u64;
        for i in 0..new_idx {
            if let Ok(meta) = fs::metadata(segment_path(&self.dir, i)) {
                if meta.len() > 0 {
                    stats.segments_rewritten += 1;
                    old_total += meta.len();
                }
            }
        }
        let mut new_file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(segment_path(&self.dir, new_idx))?;
        fault_write(&mut new_file, fault, &segment_header())?;
        let mut new_off = SEG_HDR_LEN as u64;
        let mut new_dir = FxHashMap::default();
        let (mut live_payload, mut live_uncompressed) = (0u64, 0u64);
        for id in ids {
            let loc = inner.directory[&id];
            let raw = match read_entry_bytes(inner, &self.dir, loc) {
                Ok(raw) => raw,
                Err(StoreError::Corrupt(_)) => {
                    inner.io.quarantined_entries += 1;
                    stats.entries_skipped += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            fault_write(&mut new_file, fault, &raw)?;
            inner.io.writes += 1;
            inner.io.write_bytes += u64::from(loc.len);
            if let Ok(p) = parse_entry(&raw[FRAME_HDR..]) {
                live_payload += p.payload.len() as u64;
                live_uncompressed += u64::from(p.uncompressed_len);
            }
            new_dir.insert(
                id,
                Loc {
                    seg: new_idx,
                    off: new_off,
                    len: loc.len,
                    form: loc.form,
                    degraded: loc.degraded,
                },
            );
            new_off += u64::from(loc.len);
            stats.bytes_scanned += u64::from(loc.len);
        }
        new_file.sync_data()?;
        // Swap in the new segment; empty the old files (see doc comment
        // for why truncate, not remove). Every stale put and tombstone is
        // gone with them.
        for i in 0..new_idx {
            let _ = fault_truncate(&segment_path(&self.dir, i), 0, fault);
        }
        inner.readers = (0..=new_idx).map(|_| None).collect();
        inner.active = new_file;
        inner.active_idx = new_idx;
        inner.active_off = new_off;
        inner.directory = new_dir;
        inner.dead_bytes = 0;
        inner.tomb_bytes = 0;
        inner.stale_puts.clear();
        inner.cursor = None;
        inner.live_payload_bytes = live_payload;
        inner.live_uncompressed_bytes = live_uncompressed;
        inner.cache.clear();
        stats.bytes_reclaimed = old_total.saturating_sub(new_off);
        Ok(stats)
    }

    /// One bounded increment of background compaction: copies at most
    /// ~`max_bytes` of frame bytes forward from the best victim segment
    /// (the sealed segment with the most dead space) into the active
    /// segment, then returns. Progress persists in a cursor, so repeated
    /// calls walk whole segments; a finished segment is truncated to zero
    /// and its dead space reclaimed. When every sealed segment is clean
    /// but the active segment holds dead bytes, the active segment is
    /// sealed (rotated) so the next calls can reclaim it too.
    ///
    /// Per frame of the victim:
    /// * the **live** entry (directory points here) is copied forward and
    ///   the directory re-pointed;
    /// * a **stale** put (superseded) is dropped — this is the reclaim;
    /// * a **tombstone** is dropped if its id is live again or no stale
    ///   put for it remains anywhere, else carried forward (dropping it
    ///   early would let recovery resurrect the record from a stale put);
    /// * a **damaged** frame is quarantined like the salvage scan does.
    ///
    /// Crash-safe by write ordering: copies land in the active segment
    /// before the victim is truncated, so a crash anywhere replays to a
    /// state where every live record decodes (the copy, being later in
    /// replay order, wins).
    pub fn compact_step(&self, max_bytes: u64) -> Result<CompactStats, StoreError> {
        let fault = self.config.fault.as_deref();
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut stats = CompactStats::default();
        let mut spent = 0u64;
        while spent < max_bytes.max(1) {
            let Some(mut cur) = inner.cursor else {
                match self.pick_victim(inner)? {
                    Some(cur) => {
                        inner.cursor = Some(cur);
                        continue;
                    }
                    None => break,
                }
            };
            if cur.off == 0 {
                // Validate the victim header before trusting its frames.
                let mut hdr = vec![0u8; SEG_HDR_LEN];
                ensure_reader(inner, &self.dir, cur.seg)?;
                let f = inner.readers[cur.seg as usize].as_mut().expect("reader opened");
                f.seek(SeekFrom::Start(0))?;
                let ok = f.read_exact(&mut hdr).is_ok() && header_valid(&hdr);
                if !ok {
                    // Whole segment is junk (recovery already counted it
                    // as dead); empty it.
                    fault_truncate(&segment_path(&self.dir, cur.seg), 0, fault)?;
                    inner.readers[cur.seg as usize] = None;
                    inner.dead_bytes = inner.dead_bytes.saturating_sub(cur.file_len);
                    inner.io.quarantined_entries += 1;
                    stats.entries_skipped += 1;
                    stats.bytes_reclaimed += cur.file_len;
                    stats.segments_rewritten += 1;
                    inner.cursor = None;
                    continue;
                }
                cur.off = SEG_HDR_LEN as u64;
            }
            if cur.off >= cur.file_len {
                // Segment fully processed: free it.
                fault_truncate(&segment_path(&self.dir, cur.seg), 0, fault)?;
                inner.readers[cur.seg as usize] = None;
                // Everything in the victim except the frames that were
                // live (and moved) was dead space — including the old
                // copies of carried tombstones, whose fresh copies were
                // added to `dead_bytes` when appended.
                let dead_in_victim =
                    cur.file_len.saturating_sub(SEG_HDR_LEN as u64).saturating_sub(cur.live_moved);
                inner.dead_bytes = inner.dead_bytes.saturating_sub(dead_in_victim);
                stats.bytes_reclaimed +=
                    cur.file_len.saturating_sub(cur.live_moved).saturating_sub(cur.carried_tombs);
                stats.segments_rewritten += 1;
                inner.cursor = None;
                continue;
            }
            match self.step_one_frame(inner, &mut cur, fault, &mut stats)? {
                0 => {
                    // Unrecoverable scan position; cursor advanced to end.
                    inner.cursor = Some(cur);
                }
                n => {
                    spent += n;
                    inner.cursor = Some(cur);
                }
            }
        }
        stats.bytes_scanned += spent;
        Ok(stats)
    }

    /// Chooses the next compaction victim: the sealed segment with the
    /// most dead bytes, or — if only the active segment holds dead
    /// space — seals the active segment first and picks it.
    fn pick_victim(&self, inner: &mut Inner) -> Result<Option<CompactCursor>, StoreError> {
        if inner.dead_bytes <= inner.tomb_bytes {
            // Nothing truly reclaimable: every dead byte is a tombstone
            // that still shadows a stale put somewhere. Rewriting
            // segments now would only shuffle those tombstones around.
            return Ok(None);
        }
        let mut live_per_seg: FxHashMap<u32, u64> = FxHashMap::default();
        for loc in inner.directory.values() {
            *live_per_seg.entry(loc.seg).or_insert(0) += u64::from(loc.len);
        }
        let mut best: Option<(u64, u32, u64)> = None; // (dead, seg, file_len)
        for seg in 0..inner.active_idx {
            let Ok(meta) = fs::metadata(segment_path(&self.dir, seg)) else { continue };
            let file_len = meta.len();
            if file_len == 0 {
                continue; // already compacted away
            }
            let live = live_per_seg.get(&seg).copied().unwrap_or(0);
            let dead = file_len.saturating_sub(SEG_HDR_LEN as u64).saturating_sub(live);
            if dead > 0 && best.map(|(d, _, _)| dead > d).unwrap_or(true) {
                best = Some((dead, seg, file_len));
            }
        }
        if let Some((_, seg, file_len)) = best {
            return Ok(Some(CompactCursor {
                seg,
                off: 0,
                file_len,
                live_moved: 0,
                carried_tombs: 0,
            }));
        }
        // No sealed victim. If the active segment carries the dead
        // space, seal it (rotate) and compact the now-sealed segment.
        let active_live = live_per_seg.get(&inner.active_idx).copied().unwrap_or(0);
        let active_dead =
            inner.active_off.saturating_sub(SEG_HDR_LEN as u64).saturating_sub(active_live);
        if active_dead > 0 {
            let seg = inner.active_idx;
            let file_len = inner.active_off;
            rotate_active(inner, &self.dir, self.config.fault.as_deref())?;
            return Ok(Some(CompactCursor {
                seg,
                off: 0,
                file_len,
                live_moved: 0,
                carried_tombs: 0,
            }));
        }
        Ok(None)
    }

    /// Processes the single frame at the cursor: copy, drop, or
    /// quarantine. Returns the frame bytes consumed (0 when the scan had
    /// to abandon the rest of the segment).
    fn step_one_frame(
        &self,
        inner: &mut Inner,
        cur: &mut CompactCursor,
        fault: Option<&FaultInjector>,
        stats: &mut CompactStats,
    ) -> Result<u64, StoreError> {
        ensure_reader(inner, &self.dir, cur.seg)?;
        let f = inner.readers[cur.seg as usize].as_mut().expect("reader opened");
        f.seek(SeekFrom::Start(cur.off))?;
        let mut hdr = [0u8; FRAME_HDR];
        let frame = (|| -> std::io::Result<Option<Vec<u8>>> {
            f.read_exact(&mut hdr)?;
            if hdr[..2] != FRAME_MARKER {
                return Ok(None);
            }
            let len = u32::from_le_bytes(hdr[2..6].try_into().expect("4 bytes")) as usize;
            if len > MAX_ENTRY_BYTES || (cur.off + (FRAME_HDR + len) as u64) > cur.file_len {
                return Ok(None);
            }
            let mut buf = vec![0u8; FRAME_HDR + len];
            buf[..FRAME_HDR].copy_from_slice(&hdr);
            f.read_exact(&mut buf[FRAME_HDR..])?;
            Ok(Some(buf))
        })()
        .map_err(StoreError::from)?;
        let frame = frame.filter(|buf| frame_at(buf, 0).is_some());
        let Some(frame) = frame else {
            return self.quarantine_from(inner, cur, stats);
        };
        let total = frame.len() as u64;
        inner.io.reads += 1;
        inner.io.read_bytes += total;
        let parsed = match parse_entry(&frame[FRAME_HDR..]) {
            Ok(p) => p,
            Err(_) => return self.quarantine_from(inner, cur, stats),
        };
        let id = parsed.id;
        if parsed.tombstone {
            let needed = !inner.directory.contains_key(&id)
                && inner.stale_puts.get(&id).copied().unwrap_or(0) > 0;
            if needed {
                // Copy the tombstone to the tail: it stays the latest
                // entry for its id, so replay still ends deleted.
                copy_frame_to_active(inner, &self.dir, fault, &frame, self.config.segment_bytes)?;
                inner.dead_bytes += total;
                cur.carried_tombs += total;
            } else {
                inner.tomb_bytes = inner.tomb_bytes.saturating_sub(total);
            }
        } else {
            let live = inner
                .directory
                .get(&id)
                .map(|loc| loc.seg == cur.seg && loc.off == cur.off)
                .unwrap_or(false);
            if live {
                let prev = inner.directory[&id];
                let (seg, off) = copy_frame_to_active(
                    inner,
                    &self.dir,
                    fault,
                    &frame,
                    self.config.segment_bytes,
                )?;
                inner.directory.insert(
                    id,
                    Loc { seg, off, len: total as u32, form: prev.form, degraded: prev.degraded },
                );
                cur.live_moved += total;
            } else if let Some(n) = inner.stale_puts.get_mut(&id) {
                *n -= 1;
                if *n == 0 {
                    inner.stale_puts.remove(&id);
                }
            }
        }
        cur.off += total;
        Ok(total)
    }

    /// Salvage path for in-segment damage found mid-compaction: drop any
    /// directory entries pointing into the rest of the segment (they
    /// could never be read anyway) and advance the cursor to the end so
    /// the segment gets truncated.
    fn quarantine_from(
        &self,
        inner: &mut Inner,
        cur: &mut CompactCursor,
        stats: &mut CompactStats,
    ) -> Result<u64, StoreError> {
        let seg = cur.seg;
        let from = cur.off;
        let doomed: Vec<(RecordId, u64)> = inner
            .directory
            .iter()
            .filter(|(_, loc)| loc.seg == seg && loc.off >= from)
            .map(|(&id, loc)| (id, u64::from(loc.len)))
            .collect();
        for (id, len) in doomed {
            inner.directory.remove(&id);
            // Count the lost entry as dead so the completion-time
            // subtraction (which assumes non-moved bytes were dead)
            // balances.
            inner.dead_bytes += len;
            inner.io.quarantined_entries += 1;
            stats.entries_skipped += 1;
        }
        inner.io.quarantined_entries += 1;
        stats.entries_skipped += 1;
        // The skipped run was dead (or just became dead); completion
        // accounting treats everything not copied as reclaimed.
        cur.off = cur.file_len;
        Ok(0)
    }

    /// One bounded increment of the integrity scrub: verifies up to
    /// ~`max_bytes` of **live** frames against the disk, in segment/offset
    /// order starting at the persistent scrub cursor, and reports which
    /// records read back clean versus corrupt. The scan deliberately
    /// bypasses the block cache — a cached clean copy of bytes that have
    /// since rotted on the platter is exactly the damage a scrub exists to
    /// find — and evicts the cached copy of any frame that fails, so
    /// subsequent reads observe the damage too.
    ///
    /// Detection only: the directory is not modified. Callers quarantine
    /// and heal (see [`RecordStore::quarantine`]). When the cursor walks
    /// past the last segment it wraps to the start and the slice reports
    /// `pass_complete`.
    pub fn scrub_step(&self, max_bytes: u64) -> Result<VerifySlice, StoreError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut slice = VerifySlice::default();
        'outer: while slice.bytes_verified < max_bytes.max(1) {
            let cur = inner.scrub;
            if cur.seg > inner.active_idx {
                inner.scrub = ScrubCursor::default();
                slice.pass_complete = true;
                break;
            }
            // Live frames of the cursor segment still ahead of the cursor,
            // in on-disk order.
            let mut locs: Vec<(RecordId, Loc)> = inner
                .directory
                .iter()
                .filter(|(_, loc)| loc.seg == cur.seg && loc.off >= cur.off)
                .map(|(&id, &loc)| (id, loc))
                .collect();
            if locs.is_empty() {
                inner.scrub = ScrubCursor { seg: cur.seg + 1, off: 0 };
                continue;
            }
            locs.sort_unstable_by_key(|&(_, loc)| loc.off);
            for (id, loc) in locs {
                if verify_frame_on_disk(inner, &self.dir, loc)? {
                    slice.clean.push(id);
                } else {
                    slice.corrupt.push(id);
                }
                slice.bytes_verified += u64::from(loc.len);
                inner.scrub = ScrubCursor { seg: loc.seg, off: loc.off + u64::from(loc.len) };
                if slice.bytes_verified >= max_bytes.max(1) {
                    break 'outer;
                }
            }
            // Segment exhausted within budget: move to the next one.
            inner.scrub = ScrubCursor { seg: cur.seg + 1, off: 0 };
        }
        Ok(slice)
    }

    /// The persistent scrub cursor as `(segment, offset)` — the next
    /// position [`RecordStore::scrub_step`] will verify from.
    pub fn scrub_position(&self) -> (u32, u64) {
        let inner = self.inner.lock();
        (inner.scrub.seg, inner.scrub.off)
    }

    /// Drops `id`'s live directory entry because its on-disk frame is
    /// damaged, turning the frame into dead space for compaction. Returns
    /// the frame length, or `None` when the id is not live. The damaged
    /// frame physically stays on disk as a stale put until compaction
    /// reclaims it; since it no longer passes CRC, a restart's salvage
    /// scan quarantines it again rather than resurrecting the record.
    pub fn quarantine(&self, id: RecordId) -> Result<Option<u64>, StoreError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let Some(old) = inner.directory.remove(&id) else {
            return Ok(None);
        };
        inner.dead_bytes += u64::from(old.len);
        *inner.stale_puts.entry(id).or_insert(0) += 1;
        // The cache may still hold the clean pre-damage copy: use it for
        // the live-size subtraction (those are the sizes the put once
        // added), then evict it so no read resurrects vanished data.
        if let Some((payload, uncompressed)) = read_live_sizes(inner, &self.dir, old)? {
            inner.live_payload_bytes = inner.live_payload_bytes.saturating_sub(payload);
            inner.live_uncompressed_bytes =
                inner.live_uncompressed_bytes.saturating_sub(uncompressed);
        }
        inner.cache.remove(BlockKey { seg: old.seg, off: old.off });
        inner.io.quarantined_entries += 1;
        Ok(Some(u64::from(old.len)))
    }
}

/// Opens the next segment as the active one (same rotation the append
/// path performs when a segment fills).
fn rotate_active(
    inner: &mut Inner,
    dir: &Path,
    fault: Option<&FaultInjector>,
) -> Result<(), StoreError> {
    inner.active_idx += 1;
    inner.active = OpenOptions::new()
        .create(true)
        .append(true)
        .read(true)
        .open(segment_path(dir, inner.active_idx))?;
    fault_write(&mut inner.active, fault, &segment_header())?;
    inner.io.writes += 1;
    inner.io.write_bytes += SEG_HDR_LEN as u64;
    inner.active_off = SEG_HDR_LEN as u64;
    if inner.readers.len() <= inner.active_idx as usize {
        inner.readers.resize_with(inner.active_idx as usize + 1, || None);
    }
    Ok(())
}

/// Appends an already-framed entry verbatim to the active segment
/// (rotating first if full) and returns its new location.
fn copy_frame_to_active(
    inner: &mut Inner,
    dir: &Path,
    fault: Option<&FaultInjector>,
    framed: &[u8],
    segment_bytes: u64,
) -> Result<(u32, u64), StoreError> {
    if inner.active_off >= segment_bytes {
        rotate_active(inner, dir, fault)?;
    }
    fault_write(&mut inner.active, fault, framed)?;
    let seg = inner.active_idx;
    let off = inner.active_off;
    inner.active_off += framed.len() as u64;
    inner.io.writes += 1;
    inner.io.write_bytes += framed.len() as u64;
    Ok((seg, off))
}

impl Drop for RecordStore {
    fn drop(&mut self) {
        if self.own_dir {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

fn read_entry_bytes(
    inner: &mut Inner,
    dir: &Path,
    loc: Loc,
) -> Result<std::sync::Arc<Vec<u8>>, StoreError> {
    let key = BlockKey { seg: loc.seg, off: loc.off };
    if let Some(cached) = inner.cache.get(key) {
        return Ok(cached);
    }
    let mut buf = vec![0u8; loc.len as usize];
    // Reads use a dedicated handle per segment (the append handle's cursor
    // must stay at the tail).
    ensure_reader(inner, dir, loc.seg)?;
    let f = inner.readers[loc.seg as usize].as_mut().expect("reader opened");
    f.seek(SeekFrom::Start(loc.off))?;
    f.read_exact(&mut buf)?;
    inner.io.reads += 1;
    inner.io.read_bytes += u64::from(loc.len);
    // Verify the frame before the bytes are trusted (or cached).
    let entry_len = (loc.len as usize).saturating_sub(FRAME_HDR);
    if frame_at(&buf, 0) != Some(entry_len) {
        inner.io.verify_failures += 1;
        return Err(StoreError::Corrupt(format!(
            "seg {} off {}: frame verification failed (marker/length/crc)",
            loc.seg, loc.off
        )));
    }
    let arc = std::sync::Arc::new(buf);
    inner.cache.insert(key, std::sync::Arc::clone(&arc));
    Ok(arc)
}

/// Reads the frame at `loc` straight from disk — never the block cache —
/// and verifies it end to end (marker, length, CRC, parseable entry).
/// Returns whether the frame is intact; a failure also bumps
/// [`IoStats::verify_failures`] and evicts any cached copy. A segment file
/// shorter than the directory believes counts as a failed frame, not an
/// I/O abort.
fn verify_frame_on_disk(inner: &mut Inner, dir: &Path, loc: Loc) -> Result<bool, StoreError> {
    ensure_reader(inner, dir, loc.seg)?;
    let f = inner.readers[loc.seg as usize].as_mut().expect("reader opened");
    let mut buf = vec![0u8; loc.len as usize];
    f.seek(SeekFrom::Start(loc.off))?;
    let read_ok = f.read_exact(&mut buf).is_ok();
    inner.io.reads += 1;
    inner.io.read_bytes += u64::from(loc.len);
    let entry_len = (loc.len as usize).saturating_sub(FRAME_HDR);
    let ok =
        read_ok && frame_at(&buf, 0) == Some(entry_len) && parse_entry(&buf[FRAME_HDR..]).is_ok();
    if !ok {
        inner.io.verify_failures += 1;
        inner.cache.remove(BlockKey { seg: loc.seg, off: loc.off });
    }
    Ok(ok)
}

fn ensure_reader(inner: &mut Inner, dir: &Path, seg: u32) -> Result<(), StoreError> {
    if inner.readers.len() <= seg as usize {
        inner.readers.resize_with(seg as usize + 1, || None);
    }
    if inner.readers[seg as usize].is_none() {
        inner.readers[seg as usize] = Some(File::open(segment_path(dir, seg))?);
    }
    Ok(())
}

/// Payload sizes of the entry at `loc`, or `None` if it no longer
/// verifies (damage is handled by the caller's accounting, not an error).
fn read_live_sizes(
    inner: &mut Inner,
    dir: &Path,
    loc: Loc,
) -> Result<Option<(u64, u64)>, StoreError> {
    let raw = match read_entry_bytes(inner, dir, loc) {
        Ok(raw) => raw,
        Err(StoreError::Corrupt(_)) => return Ok(None),
        Err(e) => return Err(e),
    };
    match parse_entry(&raw[FRAME_HDR..]) {
        Ok(p) => Ok(Some((p.payload.len() as u64, u64::from(p.uncompressed_len)))),
        Err(_) => Ok(None),
    }
}

struct ParsedEntry<'a> {
    id: RecordId,
    form: StorageForm,
    compressed: bool,
    tombstone: bool,
    /// Logical database name when the entry carries the degraded tag
    /// (flag bit 3): admitted raw under overload, awaiting re-dedup.
    degraded_db: Option<&'a [u8]>,
    uncompressed_len: u32,
    payload: &'a [u8],
}

/// Entry layout (after the frame header):
/// `id:u64 | flags:u8 | [base:u64 if delta] | [db_len:varint | db if degraded]
///  | uncompressed_len:varint | payload`
/// flags: bit0 delta, bit1 compressed, bit2 tombstone, bit3 degraded
/// (admitted raw under overload; tagged with the logical database so
/// out-of-line re-dedup can replay the full pipeline after a restart).
fn encode_entry(
    id: RecordId,
    form: StorageForm,
    payload: &[u8],
    try_compress: bool,
    tombstone: bool,
    degraded_db: Option<&str>,
) -> Vec<u8> {
    let mut flags = 0u8;
    let compressed_payload;
    let mut use_compressed = false;
    if try_compress && !payload.is_empty() {
        compressed_payload = blockz::compress(payload);
        if compressed_payload.len() < payload.len() {
            use_compressed = true;
        }
    } else {
        compressed_payload = Vec::new();
    }
    if let StorageForm::Delta { .. } = form {
        flags |= 0b0001;
    }
    if use_compressed {
        flags |= 0b0010;
    }
    if tombstone {
        flags |= 0b0100;
    }
    if degraded_db.is_some() {
        flags |= 0b1000;
    }
    let body: &[u8] = if use_compressed { &compressed_payload } else { payload };
    let mut w = ByteWriter::with_capacity(body.len() + 32);
    w.put_u64(id.get());
    w.put_u8(flags);
    if let StorageForm::Delta { base } = form {
        w.put_u64(base.get());
    }
    if let Some(db) = degraded_db {
        w.put_varint(db.len() as u64);
        w.put_bytes(db.as_bytes());
    }
    w.put_varint(payload.len() as u64);
    w.put_bytes(body);
    w.into_vec()
}

fn parse_entry(entry: &[u8]) -> Result<ParsedEntry<'_>, String> {
    let mut r = ByteReader::new(entry);
    let id = RecordId(r.get_u64().map_err(|e| e.to_string())?);
    let flags = r.get_u8().map_err(|e| e.to_string())?;
    let form = if flags & 0b0001 != 0 {
        StorageForm::Delta { base: RecordId(r.get_u64().map_err(|e| e.to_string())?) }
    } else {
        StorageForm::Raw
    };
    let degraded_db = if flags & 0b1000 != 0 {
        let db_len = r.get_varint().map_err(|e| e.to_string())? as usize;
        Some(r.get_bytes(db_len).map_err(|e| e.to_string())?)
    } else {
        None
    };
    let uncompressed_len = r.get_varint().map_err(|e| e.to_string())? as u32;
    let pos = r.position();
    let payload = &entry[pos..];
    Ok(ParsedEntry {
        id,
        form,
        compressed: flags & 0b0010 != 0,
        tombstone: flags & 0b0100 != 0,
        degraded_db,
        uncompressed_len,
        payload,
    })
}

fn entry_payload_len(entry: &[u8]) -> Result<usize, StoreError> {
    let p = parse_entry(entry).map_err(StoreError::Corrupt)?;
    Ok(p.payload.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};

    fn store() -> RecordStore {
        RecordStore::open_temp(StoreConfig::default()).expect("temp store")
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dbdedup-store-test-{tag}-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store();
        s.put(RecordId(1), StorageForm::Raw, b"hello").unwrap();
        let r = s.get(RecordId(1)).unwrap();
        assert_eq!(r.form, StorageForm::Raw);
        assert_eq!(&r.payload[..], b"hello");
    }

    #[test]
    fn degraded_tag_roundtrips_and_clears_on_put() {
        let s = store();
        s.put_degraded(RecordId(7), "accounts", b"raw pass-through bytes").unwrap();
        assert!(s.is_degraded(RecordId(7)));
        assert_eq!(&s.get(RecordId(7)).unwrap().payload[..], b"raw pass-through bytes");
        assert_eq!(s.degraded_records().unwrap(), vec![(RecordId(7), "accounts".to_string())]);
        // A clean overwrite supersedes the tagged frame: tag gone.
        s.put(RecordId(7), StorageForm::Raw, b"raw pass-through bytes").unwrap();
        assert!(!s.is_degraded(RecordId(7)));
        assert!(s.degraded_records().unwrap().is_empty());
    }

    #[test]
    fn degraded_tag_survives_reopen_and_compaction() {
        let dir = temp_dir("degraded");
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            s.put_degraded(RecordId(1), "db-a", &[0xa; 400]).unwrap();
            s.put_degraded(RecordId(2), "db-b", &[0xb; 400]).unwrap();
            s.put(RecordId(3), StorageForm::Raw, &[0xc; 400]).unwrap();
            // Record 2 is cleanly rewritten: its tag must not resurrect.
            s.put(RecordId(2), StorageForm::Raw, &[0xb; 400]).unwrap();
        }
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            assert!(s.recovery_report().is_clean());
            assert_eq!(s.degraded_records().unwrap(), vec![(RecordId(1), "db-a".to_string())]);
            let stats = s.compact().unwrap();
            assert!(stats.bytes_reclaimed > 0);
            assert_eq!(
                s.degraded_records().unwrap(),
                vec![(RecordId(1), "db-a".to_string())],
                "compaction copies frames verbatim, so the tag survives"
            );
            assert_eq!(&s.get(RecordId(1)).unwrap().payload[..], &[0xa; 400][..]);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_tag_with_block_compression() {
        let cfg = StoreConfig { block_compression: true, ..Default::default() };
        let s = RecordStore::open_temp(cfg).unwrap();
        let text = "compressible degraded content, repeated. ".repeat(100);
        s.put_degraded(RecordId(4), "logs", text.as_bytes()).unwrap();
        assert_eq!(&s.get(RecordId(4)).unwrap().payload[..], text.as_bytes());
        assert_eq!(s.degraded_records().unwrap(), vec![(RecordId(4), "logs".to_string())]);
    }

    #[test]
    fn delta_form_preserved() {
        let s = store();
        s.put(RecordId(2), StorageForm::Delta { base: RecordId(9) }, b"delta-bytes").unwrap();
        let r = s.get(RecordId(2)).unwrap();
        assert_eq!(r.form, StorageForm::Delta { base: RecordId(9) });
        assert_eq!(&r.payload[..], b"delta-bytes");
    }

    #[test]
    fn overwrite_repoints_and_accounts() {
        let s = store();
        s.put(RecordId(1), StorageForm::Raw, &[0xa; 1000]).unwrap();
        let live1 = s.stored_payload_bytes();
        s.put(RecordId(1), StorageForm::Raw, &[0xb; 10]).unwrap();
        assert_eq!(&s.get(RecordId(1)).unwrap().payload[..], &[0xb; 10]);
        assert_eq!(s.stored_payload_bytes(), 10);
        assert!(s.dead_bytes() >= live1, "old entry became dead space");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn missing_record_errors() {
        let s = store();
        assert!(matches!(s.get(RecordId(404)), Err(StoreError::NotFound(RecordId(404)))));
    }

    #[test]
    fn delete_then_get_fails() {
        let s = store();
        s.put(RecordId(5), StorageForm::Raw, b"gone soon").unwrap();
        s.delete(RecordId(5)).unwrap();
        assert!(!s.contains(RecordId(5)));
        assert!(matches!(s.get(RecordId(5)), Err(StoreError::NotFound(_))));
        assert_eq!(s.stored_payload_bytes(), 0);
    }

    #[test]
    fn block_compression_shrinks_text() {
        let cfg = StoreConfig { block_compression: true, ..Default::default() };
        let s = RecordStore::open_temp(cfg).unwrap();
        let text = "compressible text content, repeated. ".repeat(200);
        s.put(RecordId(1), StorageForm::Raw, text.as_bytes()).unwrap();
        assert_eq!(&s.get(RecordId(1)).unwrap().payload[..], text.as_bytes());
        assert!(s.stored_payload_bytes() < text.len() as u64 / 2);
        assert_eq!(s.stored_uncompressed_bytes(), text.len() as u64);
    }

    #[test]
    fn incompressible_payload_stored_raw() {
        let cfg = StoreConfig { block_compression: true, ..Default::default() };
        let s = RecordStore::open_temp(cfg).unwrap();
        let mut rng = dbdedup_util::dist::SplitMix64::new(1);
        let data: Vec<u8> = (0..10_000).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        s.put(RecordId(1), StorageForm::Raw, &data).unwrap();
        assert_eq!(&s.get(RecordId(1)).unwrap().payload[..], &data[..]);
        assert_eq!(s.stored_payload_bytes(), data.len() as u64);
    }

    #[test]
    fn segment_rotation() {
        let cfg = StoreConfig { segment_bytes: 4096, ..Default::default() };
        let s = RecordStore::open_temp(cfg).unwrap();
        for i in 0..100u64 {
            s.put(RecordId(i), StorageForm::Raw, &vec![i as u8; 500]).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(&s.get(RecordId(i)).unwrap().payload[..], &vec![i as u8; 500][..]);
        }
    }

    #[test]
    fn recovery_restores_directory() {
        let dir = temp_dir("recover");
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            s.put(RecordId(1), StorageForm::Raw, b"one").unwrap();
            s.put(RecordId(2), StorageForm::Delta { base: RecordId(1) }, b"two-delta").unwrap();
            s.put(RecordId(1), StorageForm::Raw, b"one-v2").unwrap();
            s.delete(RecordId(2)).unwrap();
        }
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            assert!(s.recovery_report().is_clean());
            assert_eq!(s.len(), 1);
            assert_eq!(&s.get(RecordId(1)).unwrap().payload[..], b"one-v2");
            assert!(!s.contains(RecordId(2)));
            // Store remains writable after recovery.
            s.put(RecordId(3), StorageForm::Raw, b"three").unwrap();
            assert_eq!(&s.get(RecordId(3)).unwrap().payload[..], b"three");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let s = store();
        for i in 0..50u64 {
            s.put(RecordId(i), StorageForm::Raw, &vec![1u8; 1000]).unwrap();
        }
        for i in 0..25u64 {
            s.delete(RecordId(i)).unwrap();
        }
        for i in 25..50u64 {
            s.put(RecordId(i), StorageForm::Raw, &[2u8; 10]).unwrap();
        }
        assert!(s.dead_bytes() > 0);
        let stats = s.compact().unwrap();
        assert!(stats.bytes_reclaimed > 0, "stats report the reclaim");
        assert!(stats.segments_rewritten >= 1);
        assert_eq!(stats.entries_skipped, 0);
        assert_eq!(s.dead_bytes(), 0);
        assert_eq!(s.tombstone_bytes(), 0, "full compaction drops all tombstones");
        for i in 25..50u64 {
            assert_eq!(&s.get(RecordId(i)).unwrap().payload[..], &vec![2u8; 10][..]);
        }
        assert_eq!(s.len(), 25);
        // Still writable post-compaction.
        s.put(RecordId(99), StorageForm::Raw, b"after").unwrap();
        assert_eq!(&s.get(RecordId(99)).unwrap().payload[..], b"after");
    }

    #[test]
    fn reopen_after_compact_keeps_records() {
        // Regression: compaction used to *remove* superseded segment
        // files, but the recovery scan walks indices contiguously from
        // zero — a reopened store found no seg000000.dat and silently
        // came up empty.
        let dir = temp_dir("reopen-compact");
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            for i in 0..20u64 {
                s.put(RecordId(i), StorageForm::Raw, &[i as u8; 100]).unwrap();
            }
            for i in 0..10u64 {
                s.delete(RecordId(i)).unwrap();
            }
            let _ = s.compact().unwrap();
        }
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            assert!(s.recovery_report().is_clean());
            assert_eq!(s.len(), 10);
            for i in 10..20u64 {
                assert_eq!(&s.get(RecordId(i)).unwrap().payload[..], &vec![i as u8; 100][..]);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_step_drains_dead_space_incrementally() {
        let cfg = StoreConfig { segment_bytes: 4096, ..Default::default() };
        let s = RecordStore::open_temp(cfg).unwrap();
        for i in 0..100u64 {
            s.put(RecordId(i), StorageForm::Raw, &vec![i as u8; 400]).unwrap();
        }
        for i in 0..50u64 {
            s.delete(RecordId(i)).unwrap();
        }
        for i in 50..100u64 {
            s.put(RecordId(i), StorageForm::Raw, &[i as u8; 40]).unwrap();
        }
        assert!(s.reclaimable_dead_bytes() > 0);
        let mut total = CompactStats::default();
        let mut steps = 0;
        while s.reclaimable_dead_bytes() > 0 {
            let stats = s.compact_step(2048).unwrap();
            if stats.is_noop() {
                break;
            }
            total.merge(stats);
            steps += 1;
            assert!(steps < 10_000, "incremental compaction must terminate");
        }
        assert_eq!(s.reclaimable_dead_bytes(), 0, "all reclaimable space drained");
        assert!(total.bytes_reclaimed > 0);
        assert!(total.segments_rewritten > 1, "walked multiple segments");
        assert!(steps > 1, "budget forced multiple bounded steps");
        for i in 50..100u64 {
            assert_eq!(&s.get(RecordId(i)).unwrap().payload[..], &[i as u8; 40][..]);
        }
        assert_eq!(s.len(), 50);
        // Still writable, and the store reopens to the same contents.
        s.put(RecordId(200), StorageForm::Raw, b"post-step").unwrap();
        assert_eq!(&s.get(RecordId(200)).unwrap().payload[..], b"post-step");
    }

    #[test]
    fn compact_step_survives_reopen_midway() {
        let dir = temp_dir("step-reopen");
        let cfg = StoreConfig { segment_bytes: 2048, ..Default::default() };
        {
            let s = RecordStore::open(&dir, cfg.clone()).unwrap();
            for i in 0..60u64 {
                s.put(RecordId(i), StorageForm::Raw, &[i as u8; 200]).unwrap();
            }
            for i in 0..30u64 {
                s.delete(RecordId(i)).unwrap();
            }
            // Partial pass only: stop with the cursor mid-segment.
            let _ = s.compact_step(512).unwrap();
        }
        {
            let s = RecordStore::open(&dir, cfg).unwrap();
            assert!(s.recovery_report().is_clean());
            assert_eq!(s.len(), 30);
            for i in 30..60u64 {
                assert_eq!(&s.get(RecordId(i)).unwrap().payload[..], &vec![i as u8; 200][..]);
                assert!(!s.contains(RecordId(i - 30)), "deleted stays deleted");
            }
            // And compaction can finish after the reopen.
            while s.reclaimable_dead_bytes() > 0 {
                if s.compact_step(4096).unwrap().is_noop() {
                    break;
                }
            }
            assert_eq!(s.reclaimable_dead_bytes(), 0);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tombstones_dropped_once_stale_puts_are_gone() {
        let cfg = StoreConfig { segment_bytes: 1 << 20, ..Default::default() };
        let s = RecordStore::open_temp(cfg).unwrap();
        s.put(RecordId(1), StorageForm::Raw, &[1u8; 500]).unwrap();
        s.put(RecordId(2), StorageForm::Raw, &[2u8; 500]).unwrap();
        s.delete(RecordId(1)).unwrap();
        assert!(s.tombstone_bytes() > 0);
        // Everything sits in the active segment; the step seals it and
        // copies forward. The stale put for id 1 is dropped first, so by
        // the time the tombstone is scanned it shadows nothing.
        let mut steps = 0;
        while s.reclaimable_dead_bytes() > 0 || s.tombstone_bytes() > 0 {
            if s.compact_step(u64::MAX).unwrap().is_noop() {
                break;
            }
            steps += 1;
            assert!(steps < 100);
        }
        assert_eq!(s.tombstone_bytes(), 0, "tombstone physically gone");
        assert_eq!(s.dead_bytes(), 0);
        assert!(!s.contains(RecordId(1)));
        assert_eq!(&s.get(RecordId(2)).unwrap().payload[..], &[2u8; 500][..]);
    }

    #[test]
    fn io_stats_accumulate() {
        let s = store();
        s.put(RecordId(1), StorageForm::Raw, b"x").unwrap();
        s.get(RecordId(1)).unwrap();
        let io = s.io_stats();
        assert_eq!(io.writes, 2, "segment header + entry");
        assert_eq!(io.reads, 1);
        assert!(io.write_bytes > 0 && io.read_bytes > 0);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let s = store();
        s.put(RecordId(7), StorageForm::Raw, b"").unwrap();
        assert_eq!(&s.get(RecordId(7)).unwrap().payload[..], b"");
    }

    #[test]
    fn segments_carry_validated_header() {
        let dir = temp_dir("header");
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            s.put(RecordId(1), StorageForm::Raw, b"x").unwrap();
        }
        let buf = fs::read(segment_path(&dir, 0)).unwrap();
        assert!(header_valid(&buf));
        assert_eq!(&buf[..8], SEG_MAGIC);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verified_read_detects_on_disk_flip() {
        let dir = temp_dir("flip");
        let payload = vec![0x41u8; 300];
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            s.put(RecordId(1), StorageForm::Raw, &payload).unwrap();
        }
        // Flip one payload byte behind the store's back.
        let path = segment_path(&dir, 0);
        let mut buf = fs::read(&path).unwrap();
        let at = buf.len() - 50;
        buf[at] ^= 0x01;
        fs::write(&path, &buf).unwrap();
        {
            // Recovery quarantines the damaged entry (it is the torn tail
            // of the active segment, so it is truncated away).
            let cfg = StoreConfig { block_cache_bytes: 0, ..Default::default() };
            let s = RecordStore::open(&dir, cfg).unwrap();
            let report = s.recovery_report();
            assert!(!report.is_clean());
            assert!(!s.contains(RecordId(1)), "damaged record not served");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_in_sealed_segment_does_not_drop_later_entries() {
        let dir = temp_dir("salvage-middle");
        let cfg = StoreConfig { segment_bytes: 2048, block_cache_bytes: 0, ..Default::default() };
        let first_seg_ids: Vec<u64>;
        {
            let s = RecordStore::open(&dir, cfg.clone()).unwrap();
            for i in 0..40u64 {
                s.put(RecordId(i), StorageForm::Raw, &[i as u8; 200]).unwrap();
            }
            first_seg_ids = s
                .inner
                .lock()
                .directory
                .iter()
                .filter(|(_, loc)| loc.seg == 0)
                .map(|(id, _)| id.get())
                .collect();
            assert!(first_seg_ids.len() >= 2, "need a sealed multi-entry segment");
        }
        // Damage the CRC of the first frame of sealed segment 0.
        let path = segment_path(&dir, 0);
        let mut buf = fs::read(&path).unwrap();
        buf[SEG_HDR_LEN + 6] ^= 0xFF;
        fs::write(&path, &buf).unwrap();
        {
            let s = RecordStore::open(&dir, cfg).unwrap();
            let report = s.recovery_report();
            assert_eq!(report.quarantined_entries, 1, "exactly the damaged frame");
            // Every record in segment 0 except the damaged first one must
            // still be readable — the pre-v2 scanner dropped them all.
            let mut survivors = 0;
            for &id in &first_seg_ids {
                if s.contains(RecordId(id)) {
                    let r = s.get(RecordId(id)).unwrap();
                    assert_eq!(&r.payload[..], &vec![id as u8; 200][..]);
                    survivors += 1;
                }
            }
            assert!(survivors >= first_seg_ids.len() - 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_physically() {
        let dir = temp_dir("torn");
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            s.put(RecordId(1), StorageForm::Raw, b"keep-me").unwrap();
        }
        let path = segment_path(&dir, 0);
        let clean_len = fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xDB, 0x5E, 9, 0, 0, 0, 1, 2]).unwrap(); // torn frame header
        drop(f);
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            let report = s.recovery_report();
            assert_eq!(report.truncated_tail_bytes, 8);
            assert_eq!(&s.get(RecordId(1)).unwrap().payload[..], b"keep-me");
            assert_eq!(fs::metadata(&path).unwrap().len(), clean_len);
            // Appends after salvage extend the clean prefix.
            s.put(RecordId(2), StorageForm::Raw, b"after-salvage").unwrap();
        }
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            assert!(s.recovery_report().is_clean());
            assert_eq!(&s.get(RecordId(2)).unwrap().payload[..], b"after-salvage");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_segment_with_destroyed_header_is_quarantined() {
        let dir = temp_dir("badhdr");
        let cfg = StoreConfig { segment_bytes: 1024, block_cache_bytes: 0, ..Default::default() };
        {
            let s = RecordStore::open(&dir, cfg.clone()).unwrap();
            for i in 0..20u64 {
                s.put(RecordId(i), StorageForm::Raw, &[i as u8; 200]).unwrap();
            }
        }
        let path = segment_path(&dir, 0);
        let mut buf = fs::read(&path).unwrap();
        buf[0] ^= 0xFF;
        fs::write(&path, &buf).unwrap();
        {
            // Open succeeds; records in later segments survive.
            let s = RecordStore::open(&dir, cfg).unwrap();
            let report = s.recovery_report();
            assert!(report.quarantined_bytes >= buf.len() as u64);
            assert!(!s.is_empty(), "later segments salvaged");
            assert_eq!(&s.get(RecordId(19)).unwrap().payload[..], &vec![19u8; 200][..]);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_crash_recovers_to_prefix() {
        let dir = temp_dir("crash");
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().crash_at_write(4)));
        {
            let cfg = StoreConfig { fault: Some(Arc::clone(&inj)), ..Default::default() };
            let s = RecordStore::open(&dir, cfg).unwrap();
            // Write op 0 is the segment header; entries are ops 1, 2, 3, …
            for i in 0..10u64 {
                s.put(RecordId(i), StorageForm::Raw, &[i as u8; 100]).unwrap();
            }
            assert!(inj.crashed());
        }
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            assert!(s.recovery_report().is_clean(), "silent drop leaves a clean prefix");
            assert_eq!(s.len(), 3, "exactly the pre-crash writes survive");
            for i in 0..3u64 {
                assert_eq!(&s.get(RecordId(i)).unwrap().payload[..], &vec![i as u8; 100][..]);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_during_compact_step_never_truncates_the_victim() {
        let dir = temp_dir("crash-compact");
        // Build a dirty store cleanly, then reattach with a crash plan.
        {
            let cfg = StoreConfig { segment_bytes: 2048, ..Default::default() };
            let s = RecordStore::open(&dir, cfg).unwrap();
            for i in 0..40u64 {
                s.put(RecordId(i), StorageForm::Raw, &[i as u8; 200]).unwrap();
            }
            for i in 0..20u64 {
                s.put(RecordId(i), StorageForm::Raw, &[0xAB; 200]).unwrap();
            }
        }
        // Crash on the very first compaction write: every copy-forward is
        // dropped, so the victim truncation must be suppressed too.
        for k in 0..6u64 {
            let inj = Arc::new(FaultInjector::new(FaultPlan::new().crash_at_write(k)));
            {
                let cfg = StoreConfig {
                    segment_bytes: 2048,
                    fault: Some(Arc::clone(&inj)),
                    ..Default::default()
                };
                let s = RecordStore::open(&dir, cfg).unwrap();
                while s.reclaimable_dead_bytes() > 0 {
                    match s.compact_step(1024) {
                        Ok(stats) if stats.is_noop() => break,
                        Ok(_) => {}
                        Err(_) => break,
                    }
                    if inj.crashed() {
                        break;
                    }
                }
            }
            let s =
                RecordStore::open(&dir, StoreConfig { segment_bytes: 2048, ..Default::default() })
                    .unwrap_or_else(|e| panic!("crash at {k}: reopen failed: {e}"));
            for i in 0..40u64 {
                let expect = if i < 20 { vec![0xAB; 200] } else { vec![i as u8; 200] };
                assert_eq!(
                    &s.get(RecordId(i)).unwrap().payload[..],
                    &expect[..],
                    "crash at write {k} lost record {i}"
                );
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_write_truncated_on_reopen() {
        let dir = temp_dir("shortw");
        let plan = FaultPlan::new().fault_at(3, FaultKind::ShortWrite { keep: 7 });
        let inj = Arc::new(FaultInjector::new(plan));
        {
            let cfg = StoreConfig { fault: Some(Arc::clone(&inj)), ..Default::default() };
            let s = RecordStore::open(&dir, cfg).unwrap();
            for i in 0..5u64 {
                s.put(RecordId(i), StorageForm::Raw, &[i as u8; 64]).unwrap();
            }
        }
        {
            let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
            let report = s.recovery_report();
            assert_eq!(report.truncated_tail_bytes, 7, "the torn prefix is cut");
            assert_eq!(s.len(), 2, "ops 1 and 2 survive; 3 tore, 4+ dropped");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_error_is_surfaced_not_panicked() {
        let plan = FaultPlan::new().fault_at(1, FaultKind::IoError);
        let cfg =
            StoreConfig { fault: Some(Arc::new(FaultInjector::new(plan))), ..Default::default() };
        let s = RecordStore::open_temp(cfg).unwrap();
        assert!(matches!(s.put(RecordId(1), StorageForm::Raw, b"boom"), Err(StoreError::Io(_))));
        // Transient: the next put succeeds.
        s.put(RecordId(2), StorageForm::Raw, b"fine").unwrap();
        assert_eq!(&s.get(RecordId(2)).unwrap().payload[..], b"fine");
    }

    #[test]
    fn scrub_full_pass_on_clean_store_verifies_every_live_frame() {
        let dir = temp_dir("scrub-clean");
        let cfg = StoreConfig { segment_bytes: 1024, ..Default::default() };
        let s = RecordStore::open(&dir, cfg).unwrap();
        for i in 0..12u64 {
            s.put(RecordId(i), StorageForm::Raw, &[i as u8; 200]).unwrap();
        }
        let mut clean = 0usize;
        loop {
            let slice = s.scrub_step(512).unwrap();
            assert!(slice.corrupt.is_empty(), "{slice:?}");
            clean += slice.clean.len();
            if slice.pass_complete {
                break;
            }
        }
        assert_eq!(clean, 12, "one full pass covers every live record exactly once");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_detects_rot_the_block_cache_still_masks() {
        let dir = temp_dir("scrub-rot");
        let s = RecordStore::open(&dir, StoreConfig::default()).unwrap();
        s.put(RecordId(1), StorageForm::Raw, &[0xAA; 300]).unwrap();
        s.put(RecordId(2), StorageForm::Raw, &[0xBB; 300]).unwrap();
        // Prime the cache with clean copies, then rot record 1 on disk.
        let _ = s.get(RecordId(1)).unwrap();
        let _ = s.get(RecordId(2)).unwrap();
        let path = segment_path(&dir, 0);
        let loc = s.inner.lock().directory[&RecordId(1)];
        let mut buf = fs::read(&path).unwrap();
        buf[loc.off as usize + FRAME_HDR + 20] ^= 0x40;
        fs::write(&path, &buf).unwrap();
        // A cached read still serves the stale clean copy...
        assert_eq!(&s.get(RecordId(1)).unwrap().payload[..], &[0xAA; 300][..]);
        // ...but the scrub reads the platter, finds the rot, and evicts
        // the masking cache entry.
        let mut corrupt = Vec::new();
        loop {
            let slice = s.scrub_step(u64::MAX).unwrap();
            corrupt.extend(slice.corrupt.clone());
            if slice.pass_complete {
                break;
            }
        }
        assert_eq!(corrupt, vec![RecordId(1)]);
        assert!(matches!(s.get(RecordId(1)), Err(StoreError::Corrupt(_))));
        assert_eq!(&s.get(RecordId(2)).unwrap().payload[..], &[0xBB; 300][..]);
        assert!(s.io_stats().verify_failures >= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_cursor_persists_across_bounded_slices() {
        let s = store();
        for i in 0..8u64 {
            s.put(RecordId(i), StorageForm::Raw, &[i as u8; 100]).unwrap();
        }
        let slice = s.scrub_step(1).unwrap();
        assert_eq!(slice.clean.len(), 1, "budget of 1 byte still verifies one frame");
        assert!(!slice.pass_complete);
        let (seg, off) = s.scrub_position();
        assert!((seg, off) > (0, 0), "cursor advanced");
        let next = s.scrub_step(1).unwrap();
        assert_eq!(next.clean.len(), 1);
        assert_ne!(slice.clean[0], next.clean[0], "no frame verified twice in one pass");
    }

    #[test]
    fn quarantine_removes_record_and_survives_reopen() {
        let dir = temp_dir("quarantine");
        let cfg = StoreConfig { block_cache_bytes: 0, ..Default::default() };
        {
            let s = RecordStore::open(&dir, cfg.clone()).unwrap();
            s.put(RecordId(1), StorageForm::Raw, &[0x11; 250]).unwrap();
            s.put(RecordId(2), StorageForm::Raw, &[0x22; 250]).unwrap();
            // Rot record 1 on disk, then quarantine it like scrub would.
            let loc = s.inner.lock().directory[&RecordId(1)];
            let path = segment_path(&dir, 0);
            let mut buf = fs::read(&path).unwrap();
            buf[loc.off as usize + FRAME_HDR + 5] ^= 0x01;
            fs::write(&path, &buf).unwrap();
            let len = s.quarantine(RecordId(1)).unwrap();
            assert_eq!(len, Some(u64::from(loc.len)));
            assert!(!s.contains(RecordId(1)));
            assert!(s.dead_bytes() >= u64::from(loc.len));
            assert_eq!(s.quarantine(RecordId(1)).unwrap(), None, "idempotent");
        }
        {
            // The dropped frame fails CRC on disk, so the reopen scan
            // quarantines it again instead of resurrecting the record.
            let s = RecordStore::open(&dir, cfg).unwrap();
            assert!(!s.contains(RecordId(1)), "no resurrection");
            assert_eq!(&s.get(RecordId(2)).unwrap().payload[..], &[0x22; 250][..]);
            let report = s.recovery_report();
            assert_eq!(report.quarantined_entries, 1);
            assert_eq!(report.skipped.len(), 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn salvage_report_lists_each_quarantined_frame() {
        let dir = temp_dir("salvage-detail");
        let cfg = StoreConfig { segment_bytes: 2048, block_cache_bytes: 0, ..Default::default() };
        {
            let s = RecordStore::open(&dir, cfg.clone()).unwrap();
            for i in 0..40u64 {
                s.put(RecordId(i), StorageForm::Raw, &[i as u8; 200]).unwrap();
            }
        }
        // Damage two separated frames in sealed segment 0.
        let path = segment_path(&dir, 0);
        let mut buf = fs::read(&path).unwrap();
        buf[SEG_HDR_LEN + 6] ^= 0xFF;
        buf[SEG_HDR_LEN + 800] ^= 0xFF;
        fs::write(&path, &buf).unwrap();
        {
            let s = RecordStore::open(&dir, cfg).unwrap();
            let report = s.recovery_report();
            assert_eq!(report.skipped.len() as u64, report.quarantined_entries);
            assert_eq!(report.skipped.iter().map(|f| f.bytes).sum::<u64>(), {
                report.quarantined_bytes
            });
            for f in &report.skipped {
                assert_eq!(f.segment, 0);
                assert!(f.bytes > 0);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
