//! A byte-budgeted block cache for segment reads — the stand-in for the
//! buffer pool / page cache every real DBMS puts between queries and the
//! disk (WiredTiger's cache in the paper's setup).
//!
//! Entries in the log-structured store are immutable once written (updates
//! append new entries at new locations), so the cache needs no
//! invalidation: a (segment, offset) key always names the same bytes.
//! Superseded entries simply age out via LRU.

use dbdedup_util::hash::fx::FxHashMap;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Cache key: a physical location in the segment files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// Segment index.
    pub seg: u32,
    /// Byte offset of the entry frame.
    pub off: u64,
}

/// Hit/miss counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct BlockCacheStats {
    /// Reads served from the cache.
    pub hits: u64,
    /// Reads that had to touch the file.
    pub misses: u64,
    /// Entries evicted for space.
    pub evictions: u64,
}

impl BlockCacheStats {
    /// Hit fraction in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot {
    data: Arc<Vec<u8>>,
    tick: u64,
}

/// Byte-budgeted LRU cache of immutable entry frames.
pub struct BlockCache {
    map: FxHashMap<BlockKey, Slot>,
    order: BTreeMap<u64, BlockKey>,
    capacity: usize,
    used: usize,
    clock: u64,
    stats: BlockCacheStats,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("entries", &self.map.len())
            .field("used", &self.used)
            .finish_non_exhaustive()
    }
}

impl BlockCache {
    /// Creates a cache with a byte budget (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: FxHashMap::default(),
            order: BTreeMap::new(),
            capacity,
            used: 0,
            clock: 0,
            stats: BlockCacheStats::default(),
        }
    }

    /// Fetches a block, promoting it to most-recently-used.
    pub fn get(&mut self, key: BlockKey) -> Option<Arc<Vec<u8>>> {
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(&key) {
            Some(slot) => {
                self.order.remove(&slot.tick);
                slot.tick = clock;
                self.order.insert(clock, key);
                self.stats.hits += 1;
                Some(Arc::clone(&slot.data))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly read block.
    pub fn insert(&mut self, key: BlockKey, data: Arc<Vec<u8>>) {
        if data.len() > self.capacity {
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.order.remove(&old.tick);
            self.used -= old.data.len();
        }
        while self.used + data.len() > self.capacity {
            let Some((&tick, &victim)) = self.order.iter().next() else {
                break;
            };
            self.order.remove(&tick);
            let s = self.map.remove(&victim).expect("order and map agree");
            self.used -= s.data.len();
            self.stats.evictions += 1;
        }
        self.clock += 1;
        self.used += data.len();
        self.order.insert(self.clock, key);
        self.map.insert(key, Slot { data, tick: self.clock });
    }

    /// Evicts one block. The scrub path uses this when a frame that was
    /// cached clean turns out to have rotted on disk — the one case where
    /// the "immutable once written" assumption breaks and a stale cached
    /// copy would mask real damage.
    pub fn remove(&mut self, key: BlockKey) {
        if let Some(slot) = self.map.remove(&key) {
            self.order.remove(&slot.tick);
            self.used -= slot.data.len();
        }
    }

    /// Cached bytes.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Counters.
    pub fn stats(&self) -> BlockCacheStats {
        self.stats
    }

    /// Drops everything (compaction relocates all entries).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seg: u32, off: u64) -> BlockKey {
        BlockKey { seg, off }
    }

    fn block(n: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; n])
    }

    #[test]
    fn hit_after_insert() {
        let mut c = BlockCache::new(1024);
        assert!(c.get(key(0, 0)).is_none());
        c.insert(key(0, 0), block(100, 1));
        assert_eq!(c.get(key(0, 0)).unwrap().len(), 100);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction() {
        let mut c = BlockCache::new(250);
        c.insert(key(0, 0), block(100, 1));
        c.insert(key(0, 100), block(100, 2));
        let _ = c.get(key(0, 0)); // promote
        c.insert(key(0, 200), block(100, 3));
        assert!(c.get(key(0, 0)).is_some());
        assert!(c.get(key(0, 100)).is_none(), "LRU evicted");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_block_skipped() {
        let mut c = BlockCache::new(50);
        c.insert(key(1, 0), block(100, 1));
        assert!(c.get(key(1, 0)).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn reinsert_same_key_replaces() {
        let mut c = BlockCache::new(1000);
        c.insert(key(2, 0), block(400, 1));
        c.insert(key(2, 0), block(100, 2));
        assert_eq!(c.used_bytes(), 100);
        assert_eq!(c.get(key(2, 0)).unwrap()[0], 2);
    }

    #[test]
    fn clear_empties() {
        let mut c = BlockCache::new(1000);
        c.insert(key(0, 0), block(10, 1));
        c.clear();
        assert_eq!(c.used_bytes(), 0);
        assert!(c.get(key(0, 0)).is_none());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = BlockCache::new(0);
        c.insert(key(0, 0), block(1, 1));
        assert!(c.get(key(0, 0)).is_none());
    }
}
