//! The operation log driving asynchronous replication (§4.1, Fig. 8).
//!
//! Every mutation appends an entry; the primary ships batches of
//! unsynchronized entries to secondaries. With dbDedup enabled, insert
//! payloads travel **forward-encoded**: a reference to the base record plus
//! the forward delta, which is what shrinks replication traffic in step
//! with storage (Fig. 11). Entries serialize to a compact wire format so
//! network accounting is byte-accurate.

use bytes::Bytes;
use dbdedup_util::codec::{ByteReader, ByteWriter, CodecError};
use dbdedup_util::ids::RecordId;
use std::collections::VecDeque;

/// An insert/update payload as shipped over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OplogPayload {
    /// The record's raw bytes (no similar record was found, or dedup is
    /// disabled).
    Raw(Bytes),
    /// Forward-encoded: decode by applying `delta` to the locally stored
    /// `base` record.
    Forward {
        /// The source record of the forward delta.
        base: RecordId,
        /// Encoded forward delta.
        delta: Bytes,
    },
}

impl OplogPayload {
    /// Bytes this payload contributes to network transfer.
    pub fn wire_len(&self) -> usize {
        match self {
            OplogPayload::Raw(b) => b.len(),
            OplogPayload::Forward { delta, .. } => delta.len() + 8,
        }
    }
}

/// The operation kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OplogKind {
    /// A new record.
    Insert {
        /// Record id.
        id: RecordId,
        /// Payload (raw or forward-encoded).
        payload: OplogPayload,
    },
    /// A full-record update.
    Update {
        /// Record id.
        id: RecordId,
        /// Payload (raw or forward-encoded).
        payload: OplogPayload,
    },
    /// A deletion.
    Delete {
        /// Record id.
        id: RecordId,
    },
}

/// One oplog entry: a logical sequence number plus the operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OplogEntry {
    /// Monotonic logical sequence number (the paper's timestamp).
    pub lsn: u64,
    /// The operation.
    pub kind: OplogKind,
}

impl OplogEntry {
    /// Serializes to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_varint(self.lsn);
        match &self.kind {
            OplogKind::Insert { id, payload } => {
                w.put_u8(0);
                w.put_u64(id.get());
                encode_payload(&mut w, payload);
            }
            OplogKind::Update { id, payload } => {
                w.put_u8(1);
                w.put_u64(id.get());
                encode_payload(&mut w, payload);
            }
            OplogKind::Delete { id } => {
                w.put_u8(2);
                w.put_u64(id.get());
            }
        }
        w.into_vec()
    }

    /// Parses one entry from `r`.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let lsn = r.get_varint()?;
        let tag = r.get_u8()?;
        let id = RecordId(r.get_u64()?);
        let kind = match tag {
            0 => OplogKind::Insert { id, payload: decode_payload(r)? },
            1 => OplogKind::Update { id, payload: decode_payload(r)? },
            2 => OplogKind::Delete { id },
            t => return Err(CodecError::InvalidTag(t)),
        };
        Ok(Self { lsn, kind })
    }
}

fn encode_payload(w: &mut ByteWriter, p: &OplogPayload) {
    match p {
        OplogPayload::Raw(b) => {
            w.put_u8(0);
            w.put_len_prefixed(b);
        }
        OplogPayload::Forward { base, delta } => {
            w.put_u8(1);
            w.put_u64(base.get());
            w.put_len_prefixed(delta);
        }
    }
}

fn decode_payload(r: &mut ByteReader<'_>) -> Result<OplogPayload, CodecError> {
    match r.get_u8()? {
        0 => Ok(OplogPayload::Raw(Bytes::copy_from_slice(r.get_len_prefixed()?))),
        1 => {
            let base = RecordId(r.get_u64()?);
            let delta = Bytes::copy_from_slice(r.get_len_prefixed()?);
            Ok(OplogPayload::Forward { base, delta })
        }
        t => Err(CodecError::InvalidTag(t)),
    }
}

/// Encodes a batch of entries into one wire frame.
pub fn encode_batch(entries: &[OplogEntry]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_varint(entries.len() as u64);
    for e in entries {
        let bytes = e.encode();
        w.put_len_prefixed(&bytes);
    }
    w.into_vec()
}

/// Decodes a batch frame.
pub fn decode_batch(frame: &[u8]) -> Result<Vec<OplogEntry>, CodecError> {
    let mut r = ByteReader::new(frame);
    let n = r.get_varint()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let body = r.get_len_prefixed()?;
        let mut br = ByteReader::new(body);
        out.push(OplogEntry::decode(&mut br)?);
    }
    Ok(out)
}

/// Why a cursor read could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorGap {
    /// The requested LSN precedes the retention floor: the gap has been
    /// trimmed and only a full anti-entropy resync can re-converge the
    /// replica.
    TrimmedBelowFloor {
        /// The LSN the replica asked for.
        requested: u64,
        /// The lowest LSN still retained.
        floor: u64,
    },
}

impl std::fmt::Display for CursorGap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CursorGap::TrimmedBelowFloor { requested, floor } => write!(
                f,
                "oplog cursor {requested} precedes retention floor {floor}; full resync required"
            ),
        }
    }
}

impl std::error::Error for CursorGap {}

/// The primary's in-memory oplog with a ship cursor and bounded retention
/// of already-shipped entries.
///
/// Shipment no longer discards entries: the queue keeps a contiguous run
/// `[floor_lsn, next_lsn)` and a cursor separating shipped from pending.
/// A replica that missed traffic (full queue, partition, crash) re-reads
/// the gap by LSN via [`read_from`](Self::read_from) — *oplog-cursor
/// catch-up* — instead of needing a full anti-entropy pass. Shipped
/// entries are trimmed once they exceed the retention budget (or when the
/// caller acknowledges replica progress via
/// [`ack_shipped`](Self::ack_shipped)); a cursor that falls below the
/// floor gets a typed [`CursorGap`] telling it catch-up is impossible.
#[derive(Debug)]
pub struct Oplog {
    /// Retained entries with their wire lengths; `entries[i]` has LSN
    /// `floor_lsn + i` (LSNs are contiguous by construction).
    entries: VecDeque<(OplogEntry, u32)>,
    next_lsn: u64,
    /// LSN of `entries.front()`.
    floor_lsn: u64,
    /// Index (relative to `floor_lsn`) of the first unshipped entry.
    cursor: usize,
    /// Total unsynchronized payload bytes (used for batch thresholds).
    pending_bytes: usize,
    /// Wire bytes of retained, already-shipped entries.
    shipped_bytes: usize,
    /// Budget for retained shipped entries before trimming.
    retain_bytes: usize,
}

/// Default retention budget for already-shipped entries (catch-up window).
pub const DEFAULT_OPLOG_RETAIN_BYTES: usize = 8 << 20;

impl Default for Oplog {
    fn default() -> Self {
        Self::with_retention(DEFAULT_OPLOG_RETAIN_BYTES)
    }
}

impl Oplog {
    /// Creates an empty oplog with the default retention budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty oplog retaining up to `retain_bytes` of shipped
    /// entries for cursor catch-up.
    pub fn with_retention(retain_bytes: usize) -> Self {
        Self {
            entries: VecDeque::new(),
            next_lsn: 0,
            floor_lsn: 0,
            cursor: 0,
            pending_bytes: 0,
            shipped_bytes: 0,
            retain_bytes,
        }
    }

    /// Adjusts the retention budget in place, trimming immediately if the
    /// new budget is already exceeded.
    pub fn set_retention(&mut self, retain_bytes: usize) {
        self.retain_bytes = retain_bytes;
        self.trim_to_budget();
    }

    /// Appends an operation, assigning it the next LSN. Returns the entry's
    /// LSN and its encoded wire length (for network accounting).
    pub fn append(&mut self, kind: OplogKind) -> (u64, usize) {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let entry = OplogEntry { lsn, kind };
        let wire_len = entry.encode().len();
        self.pending_bytes += wire_len;
        self.entries.push_back((entry, wire_len as u32));
        (lsn, wire_len)
    }

    /// Entries not yet shipped.
    pub fn pending(&self) -> usize {
        self.entries.len() - self.cursor
    }

    /// Unshipped payload bytes.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// The next LSN to be assigned (one past the newest entry).
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The lowest LSN still retained (== `next_lsn` when empty).
    pub fn floor_lsn(&self) -> u64 {
        self.floor_lsn
    }

    /// Takes up to `max_bytes` of entries for shipment (at least one entry
    /// when non-empty). Shipped entries stay retained for catch-up until
    /// trimmed by the retention budget or [`ack_shipped`](Self::ack_shipped).
    pub fn take_batch(&mut self, max_bytes: usize) -> Vec<OplogEntry> {
        let mut out = Vec::new();
        let mut bytes = 0usize;
        while let Some(&(ref entry, len)) = self.entries.get(self.cursor) {
            let len = len as usize;
            if !out.is_empty() && bytes + len > max_bytes {
                break;
            }
            bytes += len;
            self.pending_bytes -= len;
            self.shipped_bytes += len;
            out.push(entry.clone());
            self.cursor += 1;
        }
        self.trim_to_budget();
        out
    }

    /// Reads up to `max_bytes` of retained entries starting at `from_lsn`
    /// (at least one entry when any exist at or past it), without moving
    /// the ship cursor — the replica-driven catch-up read. `from_lsn` may
    /// point into the pending region; pending entries it returns are *not*
    /// marked shipped (the caller acknowledges progress separately).
    pub fn read_from(&self, from_lsn: u64, max_bytes: usize) -> Result<Vec<OplogEntry>, CursorGap> {
        if from_lsn < self.floor_lsn {
            return Err(CursorGap::TrimmedBelowFloor {
                requested: from_lsn,
                floor: self.floor_lsn,
            });
        }
        let start = (from_lsn - self.floor_lsn) as usize;
        let mut out = Vec::new();
        let mut bytes = 0usize;
        for &(ref entry, len) in self.entries.iter().skip(start) {
            if !out.is_empty() && bytes + len as usize > max_bytes {
                break;
            }
            bytes += len as usize;
            out.push(entry.clone());
        }
        Ok(out)
    }

    /// Acknowledges that every replica has applied entries below `lsn`:
    /// marks them shipped (if the cursor lagged) and trims them from
    /// retention. Entries at or above the cursor that are still pending
    /// are never trimmed past — `lsn` is clamped to the pending boundary.
    pub fn ack_shipped(&mut self, lsn: u64) {
        let upto = lsn.min(self.floor_lsn + self.cursor as u64);
        while self.floor_lsn < upto {
            let (_, len) = self.entries.pop_front().expect("floor below cursor implies entries");
            self.shipped_bytes -= len as usize;
            self.floor_lsn += 1;
            self.cursor -= 1;
        }
    }

    /// Drops the oldest shipped entries once they exceed the retention
    /// budget. Pending entries are never trimmed.
    fn trim_to_budget(&mut self) {
        while self.shipped_bytes > self.retain_bytes && self.cursor > 0 {
            let (_, len) = self.entries.pop_front().expect("cursor > 0 implies shipped entries");
            self.shipped_bytes -= len as usize;
            self.floor_lsn += 1;
            self.cursor -= 1;
        }
    }
}

/// A disk-backed oplog: every appended entry is framed and written to a
/// log file before being queued for shipping, and an existing log is
/// replayed on open — so a restarted primary can resume replication from
/// where it left off (MongoDB's oplog is likewise a durable collection).
#[derive(Debug)]
pub struct DurableOplog {
    inner: Oplog,
    file: std::fs::File,
}

impl DurableOplog {
    /// Opens (or creates) the oplog at `path`, replaying any existing
    /// entries into the pending queue.
    pub fn open(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        use std::io::Read;
        let mut file =
            std::fs::OpenOptions::new().create(true).read(true).append(true).open(path.as_ref())?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let mut inner = Oplog::new();
        let mut off = 0usize;
        let mut min_lsn = None;
        let mut max_lsn = None;
        while off + 4 <= buf.len() {
            let len = u32::from_le_bytes(buf[off..off + 4].try_into().expect("len 4")) as usize;
            if off + 4 + len > buf.len() {
                break; // torn tail write
            }
            let mut r = ByteReader::new(&buf[off + 4..off + 4 + len]);
            match OplogEntry::decode(&mut r) {
                Ok(e) => {
                    min_lsn = Some(min_lsn.map_or(e.lsn, |m: u64| m.min(e.lsn)));
                    max_lsn = Some(max_lsn.map_or(e.lsn, |m: u64| m.max(e.lsn)));
                    inner.pending_bytes += len;
                    inner.entries.push_back((e, len as u32));
                }
                Err(_) => break, // corrupt tail: stop replay
            }
            off += 4 + len;
        }
        // Replayed entries are all pending again (re-shipping is idempotent
        // by id/LSN); the retention floor restarts at the replayed prefix.
        inner.floor_lsn = min_lsn.unwrap_or(0);
        inner.next_lsn = max_lsn.map_or(0, |m| m + 1);
        Ok(Self { inner, file })
    }

    /// Appends an operation durably. Returns the LSN and wire length.
    pub fn append(&mut self, kind: OplogKind) -> std::io::Result<(u64, usize)> {
        use std::io::Write;
        let (lsn, wire_len) = self.inner.append(kind);
        let entry = self.inner.entries.back().expect("just appended").0.encode();
        let mut framed = Vec::with_capacity(entry.len() + 4);
        framed.extend_from_slice(&(entry.len() as u32).to_le_bytes());
        framed.extend_from_slice(&entry);
        self.file.write_all(&framed)?;
        Ok((lsn, wire_len))
    }

    /// Forces appended entries to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    /// Entries not yet shipped.
    pub fn pending(&self) -> usize {
        self.inner.pending()
    }

    /// Takes a batch for shipment (see [`Oplog::take_batch`]). The shipped
    /// entries remain in the on-disk log (a real deployment truncates it
    /// by retention policy, which is orthogonal to this reproduction).
    pub fn take_batch(&mut self, max_bytes: usize) -> Vec<OplogEntry> {
        self.inner.take_batch(max_bytes)
    }

    /// Replica-driven catch-up read (see [`Oplog::read_from`]).
    pub fn read_from(&self, from_lsn: u64, max_bytes: usize) -> Result<Vec<OplogEntry>, CursorGap> {
        self.inner.read_from(from_lsn, max_bytes)
    }

    /// Acknowledges replica progress (see [`Oplog::ack_shipped`]). Only
    /// the in-memory retention window shrinks; the on-disk log keeps
    /// everything.
    pub fn ack_shipped(&mut self, lsn: u64) {
        self.inner.ack_shipped(lsn);
    }

    /// The next LSN to be assigned.
    pub fn next_lsn(&self) -> u64 {
        self.inner.next_lsn()
    }

    /// The lowest LSN still retained in memory for catch-up.
    pub fn floor_lsn(&self) -> u64 {
        self.inner.floor_lsn()
    }

    /// Adjusts the in-memory retention budget (see [`Oplog::set_retention`]).
    pub fn set_retention(&mut self, retain_bytes: usize) {
        self.inner.set_retention(retain_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(b: &[u8]) -> OplogPayload {
        OplogPayload::Raw(Bytes::copy_from_slice(b))
    }

    #[test]
    fn entry_roundtrip_all_kinds() {
        let entries = vec![
            OplogEntry {
                lsn: 0,
                kind: OplogKind::Insert { id: RecordId(1), payload: raw(b"abc") },
            },
            OplogEntry {
                lsn: 1,
                kind: OplogKind::Update {
                    id: RecordId(2),
                    payload: OplogPayload::Forward {
                        base: RecordId(1),
                        delta: Bytes::from_static(b"\x01\x02"),
                    },
                },
            },
            OplogEntry { lsn: 2, kind: OplogKind::Delete { id: RecordId(3) } },
        ];
        for e in &entries {
            let bytes = e.encode();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(&OplogEntry::decode(&mut r).unwrap(), e);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn batch_roundtrip() {
        let entries: Vec<OplogEntry> = (0..10)
            .map(|i| OplogEntry {
                lsn: i,
                kind: OplogKind::Insert { id: RecordId(i), payload: raw(&[i as u8; 16]) },
            })
            .collect();
        let frame = encode_batch(&entries);
        assert_eq!(decode_batch(&frame).unwrap(), entries);
    }

    #[test]
    fn lsn_monotonic() {
        let mut log = Oplog::new();
        let (lsn0, len0) = log.append(OplogKind::Delete { id: RecordId(1) });
        let (lsn1, _) = log.append(OplogKind::Delete { id: RecordId(2) });
        assert_eq!(lsn0, 0);
        assert_eq!(lsn1, 1);
        assert!(len0 > 0);
        assert_eq!(log.pending(), 2);
    }

    #[test]
    fn take_batch_respects_byte_budget() {
        let mut log = Oplog::new();
        for i in 0..20u64 {
            log.append(OplogKind::Insert { id: RecordId(i), payload: raw(&[0u8; 100]) });
        }
        let before = log.pending_bytes();
        let batch = log.take_batch(350);
        assert!((2..=4).contains(&batch.len()), "batch of {} entries", batch.len());
        assert_eq!(
            log.pending_bytes(),
            before - batch.iter().map(|e| e.encode().len()).sum::<usize>()
        );
        // Batches preserve order.
        assert_eq!(batch[0].lsn, 0);
        assert_eq!(batch[1].lsn, 1);
    }

    #[test]
    fn oversized_single_entry_still_ships() {
        let mut log = Oplog::new();
        log.append(OplogKind::Insert { id: RecordId(1), payload: raw(&[0u8; 10_000]) });
        let batch = log.take_batch(100);
        assert_eq!(batch.len(), 1, "a batch always makes progress");
        assert_eq!(log.pending(), 0);
        assert_eq!(log.pending_bytes(), 0);
    }

    #[test]
    fn forward_payload_wire_len_counts_base_ref() {
        let p = OplogPayload::Forward { base: RecordId(1), delta: Bytes::from_static(&[0; 10]) };
        assert_eq!(p.wire_len(), 18);
        assert_eq!(raw(&[0; 10]).wire_len(), 10);
    }

    #[test]
    fn durable_oplog_replays_after_reopen() {
        let path = std::env::temp_dir().join(format!(
            "dbdedup-oplog-{}-{:x}",
            std::process::id(),
            0xd0u8 as u64
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut log = DurableOplog::open(&path).unwrap();
            log.append(OplogKind::Insert { id: RecordId(1), payload: raw(b"one") }).unwrap();
            log.append(OplogKind::Delete { id: RecordId(2) }).unwrap();
            log.sync().unwrap();
            // Ship one entry, then "crash" with one pending.
            let b = log.take_batch(1);
            assert_eq!(b.len(), 1);
        }
        {
            // Recovery replays the full durable log (shipped entries are
            // re-shipped; replication apply is idempotent by id/LSN).
            let mut log = DurableOplog::open(&path).unwrap();
            assert_eq!(log.pending(), 2);
            let batch = log.take_batch(usize::MAX);
            assert_eq!(batch[0].lsn, 0);
            assert_eq!(batch[1].lsn, 1);
            // New appends continue the LSN sequence.
            let (lsn, _) = log.append(OplogKind::Delete { id: RecordId(3) }).unwrap();
            assert_eq!(lsn, 2);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn durable_oplog_tolerates_torn_tail() {
        let path = std::env::temp_dir().join(format!("dbdedup-oplog-torn-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut log = DurableOplog::open(&path).unwrap();
            log.append(OplogKind::Delete { id: RecordId(1) }).unwrap();
            log.sync().unwrap();
        }
        // Simulate a torn write: append garbage frame header.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 1, 2, 3]).unwrap(); // declares 200 bytes, has 3
        }
        let log = DurableOplog::open(&path).unwrap();
        assert_eq!(log.pending(), 1, "intact prefix replayed, torn tail dropped");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shipped_entries_are_retained_for_cursor_reads() {
        let mut log = Oplog::new();
        for i in 0..10u64 {
            log.append(OplogKind::Insert { id: RecordId(i), payload: raw(&[i as u8; 50]) });
        }
        let batch = log.take_batch(usize::MAX);
        assert_eq!(batch.len(), 10);
        assert_eq!(log.pending(), 0);
        // A replica that missed LSNs 4.. re-reads them from the cursor.
        let gap = log.read_from(4, usize::MAX).unwrap();
        assert_eq!(gap.len(), 6);
        assert_eq!(gap[0].lsn, 4);
        assert_eq!(gap[5].lsn, 9);
    }

    #[test]
    fn read_from_spans_shipped_and_pending() {
        let mut log = Oplog::new();
        for i in 0..6u64 {
            log.append(OplogKind::Delete { id: RecordId(i) });
        }
        let _ = log.take_batch(30); // ship a prefix
        let shipped = 6 - log.pending() as u64;
        assert!(shipped > 0 && log.pending() > 0, "need both regions");
        let all = log.read_from(0, usize::MAX).unwrap();
        assert_eq!(all.len(), 6, "cursor reads cross the ship boundary");
        // Reading pending entries does not mark them shipped.
        assert_eq!(log.pending(), 6 - shipped as usize);
    }

    #[test]
    fn read_from_below_floor_is_a_typed_gap() {
        let mut log = Oplog::with_retention(0); // trim everything shipped
        for i in 0..5u64 {
            log.append(OplogKind::Delete { id: RecordId(i) });
        }
        let _ = log.take_batch(usize::MAX);
        assert_eq!(log.floor_lsn(), 5, "zero retention trims all shipped entries");
        match log.read_from(2, usize::MAX) {
            Err(CursorGap::TrimmedBelowFloor { requested: 2, floor: 5 }) => {}
            other => panic!("expected trimmed gap, got {other:?}"),
        }
        // At the floor itself the read is legal (and empty).
        assert!(log.read_from(5, usize::MAX).unwrap().is_empty());
    }

    #[test]
    fn ack_trims_retention_but_never_pending() {
        let mut log = Oplog::new();
        for i in 0..8u64 {
            log.append(OplogKind::Delete { id: RecordId(i) });
        }
        let taken = log.take_batch(20).len() as u64; // partial ship
        assert!(taken < 8);
        // Ack beyond the ship cursor clamps to it: pending survives.
        log.ack_shipped(8);
        assert_eq!(log.floor_lsn(), taken);
        assert_eq!(log.pending(), (8 - taken) as usize);
        assert_eq!(log.read_from(taken, usize::MAX).unwrap().len(), (8 - taken) as usize);
    }

    #[test]
    fn retention_budget_bounds_shipped_memory() {
        let mut log = Oplog::with_retention(200);
        for i in 0..50u64 {
            log.append(OplogKind::Insert { id: RecordId(i), payload: raw(&[0u8; 40]) });
        }
        let _ = log.take_batch(usize::MAX);
        assert!(log.floor_lsn() > 0, "old shipped entries must be trimmed");
        assert!(log.next_lsn() == 50);
        // Whatever remains is still a contiguous, readable suffix.
        let tail = log.read_from(log.floor_lsn(), usize::MAX).unwrap();
        assert_eq!(tail.last().unwrap().lsn, 49);
        assert_eq!(tail.first().unwrap().lsn, log.floor_lsn());
    }

    #[test]
    fn durable_oplog_supports_cursor_reads_after_reopen() {
        let path =
            std::env::temp_dir().join(format!("dbdedup-oplog-cursor-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut log = DurableOplog::open(&path).unwrap();
            for i in 0..4u64 {
                log.append(OplogKind::Delete { id: RecordId(i) }).unwrap();
            }
            log.sync().unwrap();
        }
        let log = DurableOplog::open(&path).unwrap();
        assert_eq!(log.floor_lsn(), 0);
        assert_eq!(log.next_lsn(), 4);
        assert_eq!(log.read_from(2, usize::MAX).unwrap().len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_batch_rejected() {
        let entries = vec![OplogEntry {
            lsn: 0,
            kind: OplogKind::Insert { id: RecordId(1), payload: raw(b"x") },
        }];
        let mut frame = encode_batch(&entries);
        frame.truncate(frame.len() - 1);
        assert!(decode_batch(&frame).is_err());
    }
}
