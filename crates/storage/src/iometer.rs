//! The I/O activity meter: dbDedup's idleness signal (§3.3.2).
//!
//! The paper uses the device's I/O queue length to decide when the system
//! is "relatively idle" and writebacks can be flushed without contending
//! with client traffic. This meter models that: submitted operations join a
//! queue that drains at a configured rate; the write-back path polls
//! [`IoMeter::is_idle`]. Time advances explicitly ([`IoMeter::tick`]) so
//! tests and simulations are deterministic; [`IoMeter::tick_auto`] feeds it
//! wall-clock time for live use.

use std::time::Instant;

/// A point-in-time view of the modeled device's pressure, exported to the
/// operator surface (the health model classifies I/O pressure from the
/// queue depth relative to the idleness threshold).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoPressure {
    /// Current modeled queue length (operations).
    pub queue_depth: f64,
    /// The configured idleness threshold (operations).
    pub idle_threshold: f64,
    /// Fraction of metered time the device has been idle, in `[0, 1]`.
    pub idle_fraction: f64,
}

impl IoPressure {
    /// Whether the device is currently idle enough for background work.
    pub fn is_idle(&self) -> bool {
        self.queue_depth <= self.idle_threshold
    }

    /// Queue depth as a multiple of the idleness threshold — the
    /// saturation signal the health model thresholds on. A zero
    /// threshold reports the raw queue depth.
    pub fn saturation(&self) -> f64 {
        if self.idle_threshold > 0.0 {
            self.queue_depth / self.idle_threshold
        } else {
            self.queue_depth
        }
    }
}

/// A drain-rate queue model of device I/O.
#[derive(Debug, Clone)]
pub struct IoMeter {
    queue: f64,
    drain_per_sec: f64,
    idle_threshold: f64,
    last_auto: Option<Instant>,
    /// Cumulative metered time and the portion of it spent above the
    /// idleness threshold — the externally visible idle-fraction gauge.
    total_secs: f64,
    busy_secs: f64,
}

impl IoMeter {
    /// Creates a meter draining `drain_per_sec` operations per second and
    /// reporting idle when the queue is below `idle_threshold` operations.
    pub fn new(drain_per_sec: f64, idle_threshold: f64) -> Self {
        assert!(drain_per_sec > 0.0 && idle_threshold >= 0.0);
        Self {
            queue: 0.0,
            drain_per_sec,
            idle_threshold,
            last_auto: None,
            total_secs: 0.0,
            busy_secs: 0.0,
        }
    }

    /// A profile approximating the paper's HDD testbed: ~200 IOPS drain,
    /// idle below 4 queued ops.
    pub fn hdd_profile() -> Self {
        Self::new(200.0, 4.0)
    }

    /// Submits `ops` I/O operations to the queue.
    pub fn submit(&mut self, ops: u64) {
        self.queue += ops as f64;
    }

    /// Advances simulated time by `seconds`, draining the queue.
    pub fn tick(&mut self, seconds: f64) {
        assert!(seconds >= 0.0);
        // The stretch of this interval the queue stays above the idleness
        // threshold counts as busy time for the idle-fraction gauge.
        if self.queue > self.idle_threshold {
            let to_idle = (self.queue - self.idle_threshold) / self.drain_per_sec;
            self.busy_secs += to_idle.min(seconds);
        }
        self.total_secs += seconds;
        self.queue = (self.queue - seconds * self.drain_per_sec).max(0.0);
    }

    /// Advances by real elapsed time since the previous `tick_auto` call.
    pub fn tick_auto(&mut self) {
        let now = Instant::now();
        if let Some(last) = self.last_auto {
            self.tick(now.duration_since(last).as_secs_f64());
        }
        self.last_auto = Some(now);
    }

    /// Current modeled queue length.
    pub fn queue_len(&self) -> f64 {
        self.queue
    }

    /// Whether the device is idle enough for background writebacks.
    pub fn is_idle(&self) -> bool {
        self.queue <= self.idle_threshold
    }

    /// Fraction of metered time the device has been idle (below the
    /// threshold), in `[0, 1]`. A meter that has seen no time yet reports
    /// fully idle.
    pub fn idle_fraction(&self) -> f64 {
        if self.total_secs <= 0.0 {
            1.0
        } else {
            (1.0 - self.busy_secs / self.total_secs).clamp(0.0, 1.0)
        }
    }

    /// The pressure view the operator surface exports.
    pub fn pressure(&self) -> IoPressure {
        IoPressure {
            queue_depth: self.queue,
            idle_threshold: self.idle_threshold,
            idle_fraction: self.idle_fraction(),
        }
    }
}

impl Default for IoMeter {
    fn default() -> Self {
        Self::hdd_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_idle() {
        let m = IoMeter::new(100.0, 2.0);
        assert!(m.is_idle());
        assert_eq!(m.queue_len(), 0.0);
    }

    #[test]
    fn burst_makes_busy_drain_makes_idle() {
        let mut m = IoMeter::new(100.0, 2.0);
        m.submit(50);
        assert!(!m.is_idle());
        m.tick(0.3); // drains 30
        assert!(!m.is_idle());
        m.tick(0.2); // drains to 0
        assert!(m.is_idle());
    }

    #[test]
    fn queue_never_negative() {
        let mut m = IoMeter::new(1000.0, 1.0);
        m.submit(1);
        m.tick(10.0);
        assert_eq!(m.queue_len(), 0.0);
    }

    #[test]
    fn threshold_inclusive() {
        let mut m = IoMeter::new(100.0, 5.0);
        m.submit(5);
        assert!(m.is_idle(), "exactly at threshold counts as idle");
        m.submit(1);
        assert!(!m.is_idle());
    }

    #[test]
    fn idle_fraction_tracks_busy_time() {
        let mut m = IoMeter::new(100.0, 0.0);
        assert_eq!(m.idle_fraction(), 1.0, "no metered time yet means idle");
        // 100 ops at 100 ops/s: busy for exactly 1 s of the 4 s metered.
        m.submit(100);
        m.tick(4.0);
        assert!((m.idle_fraction() - 0.75).abs() < 1e-9, "{}", m.idle_fraction());
        // Another 4 idle seconds: 7/8 idle overall.
        m.tick(4.0);
        assert!((m.idle_fraction() - 0.875).abs() < 1e-9, "{}", m.idle_fraction());
    }

    #[test]
    fn idle_fraction_saturated_queue_is_all_busy() {
        let mut m = IoMeter::new(10.0, 1.0);
        m.submit(1000);
        m.tick(2.0); // drains 20 of 1000: busy the whole interval
        assert!((m.idle_fraction() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn tick_auto_progresses() {
        let mut m = IoMeter::new(1_000_000.0, 1.0);
        m.submit(100);
        m.tick_auto(); // establishes the baseline instant
        std::thread::sleep(std::time::Duration::from_millis(5));
        m.tick_auto();
        assert!(m.is_idle(), "fast drain should clear 100 ops in 5ms");
    }
}
