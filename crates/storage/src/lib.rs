//! # dbdedup-storage
//!
//! The storage substrate dbDedup integrates into — our stand-in for
//! MongoDB + WiredTiger in the paper's evaluation (§4.1, Fig. 8). dbDedup
//! needs four things from its host DBMS, and this crate provides exactly
//! those:
//!
//! * [`store`] — a log-structured, disk-backed **record store**: records
//!   are appended to segment files and located through an in-memory
//!   directory; updates append a new version and re-point the directory
//!   (compaction reclaims dead space). Records are stored either raw or as
//!   a backward delta referencing a base record.
//! * [`blockz`] — a from-scratch LZ77 **block compressor** standing in for
//!   Snappy: byte-oriented literal/copy format, greedy hash-chain matching,
//!   the same "fast, intra-block-only" profile. Dedup's gains compose with
//!   it (Fig. 1, Fig. 10).
//! * [`oplog`] — the **operation log** that drives asynchronous
//!   replication: insert/update/delete entries carrying either raw record
//!   payloads or forward-encoded deltas, batched for shipping.
//! * [`iometer`] — a deterministic **I/O activity meter** exposing the
//!   queue-length idleness signal the lossy write-back cache keys off
//!   (§3.3.2).
//! * [`blockcache`] — a byte-budgeted LRU block cache in front of segment
//!   reads, standing in for the DBMS buffer pool (WiredTiger's cache).
//! * [`fault`] — deterministic **fault injection** (torn writes, bit
//!   flips, transient I/O errors, crash-at-write-K) threaded through the
//!   store's write path, so crash/corruption recovery is testable from a
//!   seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockcache;
pub mod blockz;
pub mod fault;
pub mod iometer;
pub mod oplog;
pub mod store;

pub use fault::{FaultInjector, FaultKind, FaultPlan, WriteOutcome};
pub use iometer::{IoMeter, IoPressure};
pub use oplog::{CursorGap, Oplog, OplogEntry, OplogKind, OplogPayload};
pub use store::{
    CompactStats, RecordStore, RecoveryReport, SalvagedFrame, StorageForm, StoreConfig, StoreError,
    StoredRecord, VerifySlice,
};
