//! Randomized-but-deterministic tests over chain-manager invariants under
//! arbitrary append/commit/delete interleavings, driven by a seeded
//! [`SplitMix64`] stream (proptest is unavailable offline; every failure
//! reproduces from the fixed seeds).

use dbdedup_encoding::{ChainManager, EncodingPolicy};
use dbdedup_util::dist::SplitMix64;
use dbdedup_util::ids::RecordId;

fn rand_policy(rng: &mut SplitMix64) -> EncodingPolicy {
    match rng.next_index(3) {
        0 => EncodingPolicy::Backward,
        1 => EncodingPolicy::Hop {
            distance: 2 + rng.next_below(4),
            max_levels: 1 + rng.next_below(3) as u32,
        },
        _ => EncodingPolicy::VersionJumping { cluster: 2 + rng.next_below(7) },
    }
}

/// Build a chain of arbitrary length under an arbitrary policy,
/// committing an arbitrary subset of writebacks. Invariants:
/// decode paths terminate; the head is always raw; refcounts equal the
/// number of committed base pointers; every record decodes.
#[test]
fn chain_invariants() {
    let mut rng = SplitMix64::new(0xE4C_0001);
    for _ in 0..64 {
        let policy = rand_policy(&mut rng);
        let n = 1 + rng.next_below(119);
        let commit_mask = rng.next_u64();
        let mut m = ChainManager::new(policy);
        let mut plans = vec![m.start_chain(RecordId(0))];
        for i in 1..n {
            plans.push(m.append(RecordId(i), RecordId(i - 1)));
        }
        let mut committed = 0u64;
        for (k, p) in plans.into_iter().enumerate() {
            if commit_mask >> (k % 64) & 1 == 1 {
                for wb in p.writebacks {
                    m.commit_writeback(wb);
                    committed += 1;
                }
            }
        }
        // Head raw.
        assert_eq!(m.base_of(RecordId(n - 1)), None);
        // Refcount bookkeeping: total refcounts == live base pointers.
        let total_bases = (0..n).filter(|&i| m.base_of(RecordId(i)).is_some()).count() as u32;
        let total_refs: u32 = (0..n).map(|i| m.refcount(RecordId(i))).sum();
        assert_eq!(total_refs, total_bases);
        // Every decode path terminates at a raw record.
        for i in 0..n {
            let path = m.decode_path(RecordId(i)).expect("tracked");
            let last = *path.last().unwrap();
            assert_eq!(m.base_of(last), None, "path of {i} ends raw");
            // Paths only move to newer records (acyclic by construction).
            for w in path.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
        // Note: some committed writebacks may have been superseded by hop
        // upgrades re-pointing the same target, so committed >= total_bases.
        assert!(committed >= u64::from(total_bases));
    }
}

/// Deleting from the tail inward with removal cascades never breaks
/// surviving records' decode paths.
#[test]
fn delete_cascade_safety() {
    let mut rng = SplitMix64::new(0xE4C_0002);
    for _ in 0..64 {
        let n = 2 + rng.next_below(58);
        let delete_from = rng.next_below(60);
        let mut m = ChainManager::new(EncodingPolicy::default_hop());
        let mut plans = vec![m.start_chain(RecordId(0))];
        for i in 1..n {
            plans.push(m.append(RecordId(i), RecordId(i - 1)));
        }
        for p in plans {
            for wb in p.writebacks {
                m.commit_writeback(wb);
            }
        }
        let start = delete_from.min(n - 1);
        // Mark a suffix deleted; physically remove those with refcount 0,
        // in reverse order (as GC would).
        for i in (0..=start).rev() {
            let id = RecordId(i);
            if m.refcount(id) == 0 && !m.is_deleted(id) {
                m.mark_deleted(id);
                m.remove(id);
            }
        }
        // All remaining records still decode to a raw terminus.
        for i in 0..n {
            if m.decode_path(RecordId(i)).is_none() {
                continue; // removed
            }
            let path = m.decode_path(RecordId(i)).unwrap();
            assert_eq!(m.base_of(*path.last().unwrap()), None);
        }
    }
}
