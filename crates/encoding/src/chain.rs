//! The encoding-chain manager.
//!
//! Tracks, for every record: which chain it belongs to, its chain index,
//! its committed base pointer (what the on-disk delta decodes against),
//! its reference count (how many records decode *through* it), and its
//! deletion mark. Two phases per insert:
//!
//! 1. [`ChainManager::append`] / [`ChainManager::start_chain`] — *planning*:
//!    updates chain-progress state and returns the [`EncodePlan`] listing
//!    which records should be re-encoded against the new record.
//! 2. [`ChainManager::commit_writeback`] — *commitment*: called when a
//!    planned writeback actually lands on disk. Only commitment mutates
//!    base pointers and reference counts, so writebacks dropped by the
//!    lossy cache simply leave the record raw (no topology corruption).

use crate::policy::EncodingPolicy;
use dbdedup_util::hash::fx::FxHashMap;
use dbdedup_util::ids::RecordId;

/// A planned re-encoding: store `target` as a backward delta whose source
/// (decode base) is `base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// The existing record to be replaced by a delta.
    pub target: RecordId,
    /// The record the delta will decode against (always the new record).
    pub base: RecordId,
}

/// The outcome of planning one insert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodePlan {
    /// The newly inserted record (stored raw).
    pub new_record: RecordId,
    /// Records that should be re-encoded against `new_record`.
    pub writebacks: Vec<Writeback>,
    /// True when the selected source was not its chain's head — the
    /// "overlapped encoding" case of Fig. 5, which costs some compression.
    pub overlapped: bool,
}

#[derive(Debug, Clone)]
struct RecordState {
    chain: u32,
    index: u64,
    /// Committed decode base (None ⇒ stored raw).
    base: Option<RecordId>,
    /// How many records use this one as their committed decode base.
    refcount: u32,
    deleted: bool,
}

#[derive(Debug, Clone)]
struct ChainState {
    /// `pending_hop[ℓ]` (ℓ ≥ 1) is the level-ℓ hop base awaiting its
    /// *upgrade* writeback — it already holds its short-range backward
    /// delta and will be re-encoded against the next record of level ≥ ℓ.
    pending_hop: Vec<Option<RecordId>>,
    next_index: u64,
    head: RecordId,
}

/// Statistics the figures report.
#[derive(Debug, Default, Clone, Copy)]
pub struct ChainStats {
    /// Total writebacks planned.
    pub planned_writebacks: u64,
    /// Total writebacks committed.
    pub committed_writebacks: u64,
    /// Inserts that hit the overlapped-encoding case.
    pub overlapped_inserts: u64,
    /// Number of chains started.
    pub chains: u64,
}

/// See module docs.
#[derive(Debug)]
pub struct ChainManager {
    policy: EncodingPolicy,
    records: FxHashMap<RecordId, RecordState>,
    chains: Vec<ChainState>,
    stats: ChainStats,
}

impl ChainManager {
    /// Creates a manager for the given encoding policy.
    pub fn new(policy: EncodingPolicy) -> Self {
        Self {
            policy,
            records: FxHashMap::default(),
            chains: Vec::new(),
            stats: ChainStats::default(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> EncodingPolicy {
        self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ChainStats {
        self.stats
    }

    /// Number of records tracked.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are tracked.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Rebuilds topology from the on-disk state after a restart: every live
    /// record with its committed base pointer (None = raw). Reference
    /// counts are recomputed; records stored raw become heads of their own
    /// recovered chains (future appends extend them normally), while
    /// delta-encoded records are mid-chain (a future insert selecting one
    /// as its source takes the overlapped-encoding path, which is always
    /// safe).
    ///
    /// Panics if called on a non-empty manager or if a base references an
    /// unknown record.
    pub fn recover(&mut self, entries: impl IntoIterator<Item = (RecordId, Option<RecordId>)>) {
        assert!(self.is_empty(), "recover() requires a fresh manager");
        let entries: Vec<(RecordId, Option<RecordId>)> = entries.into_iter().collect();
        // First pass: create states; raw records head their own chain.
        for &(id, base) in &entries {
            let chain = self.chains.len() as u32;
            // Raw records head their own chain; mid-chain records point the
            // chain head at their base so they are never treated as heads
            // (base ≠ id always holds).
            let head = base.unwrap_or(id);
            self.chains.push(ChainState {
                pending_hop: vec![None; self.policy.levels()],
                next_index: 1,
                head,
            });
            self.records
                .insert(id, RecordState { chain, index: 0, base, refcount: 0, deleted: false });
            self.stats.chains += 1;
        }
        // Second pass: recompute reference counts.
        for &(_, base) in &entries {
            if let Some(b) = base {
                let s = self.records.get_mut(&b).expect("recovered base must be a live record");
                s.refcount += 1;
            }
        }
    }

    /// Registers `id` as the first record of a fresh chain (no similar
    /// source was found). It is stored raw and becomes the chain head.
    pub fn start_chain(&mut self, id: RecordId) -> EncodePlan {
        assert!(!self.records.contains_key(&id), "record {id} already tracked");
        let chain = self.chains.len() as u32;
        let mut pending_hop = vec![None; self.policy.levels()];
        let level = (self.policy.level_of(0) as usize).min(pending_hop.len() - 1);
        if level >= 1 {
            pending_hop[level] = Some(id);
        }
        self.chains.push(ChainState { pending_hop, next_index: 1, head: id });
        self.records
            .insert(id, RecordState { chain, index: 0, base: None, refcount: 0, deleted: false });
        self.stats.chains += 1;
        EncodePlan { new_record: id, writebacks: Vec::new(), overlapped: false }
    }

    /// Plans the insert of `new` whose selected similar source is `source`.
    ///
    /// Normal case (`source` is its chain's head): `new` extends the chain.
    /// The old head receives its ordinary backward writeback (unless it is
    /// a version-jumping reference version), and — when `new` is a level-ℓ
    /// hop base — every pending hop base of level ≤ ℓ is *upgraded*:
    /// re-encoded against `new` so the skip-lanes of Fig. 6 form. Hence hop
    /// bases are written back twice over their lifetime, which is exactly
    /// the Table 2 writeback surplus `N·H/(H−1)²`.
    ///
    /// Overlapped case (`source` is mid-chain, Fig. 5): `source` alone is
    /// re-encoded against `new`, and `new` starts a fresh chain.
    pub fn append(&mut self, new: RecordId, source: RecordId) -> EncodePlan {
        assert!(!self.records.contains_key(&new), "record {new} already tracked");
        let src_state = self.records.get(&source).expect("source must be tracked");
        let chain_id = src_state.chain;
        let is_head = self.chains[chain_id as usize].head == source;

        if !is_head {
            // Overlapped encoding: re-point only the source at the new
            // record; the new record starts its own chain.
            self.stats.overlapped_inserts += 1;
            // If the source was a pending hop base, its upgrade has now
            // effectively happened out of band.
            let chain = &mut self.chains[chain_id as usize];
            for slot in &mut chain.pending_hop {
                if *slot == Some(source) {
                    *slot = None;
                }
            }
            let mut plan = self.start_chain(new);
            plan.overlapped = true;
            plan.writebacks.push(Writeback { target: source, base: new });
            self.stats.planned_writebacks += 1;
            return plan;
        }

        let chain = &mut self.chains[chain_id as usize];
        let idx = chain.next_index;
        chain.next_index += 1;
        let prev = std::mem::replace(&mut chain.head, new);

        let mut writebacks = Vec::new();
        // Ordinary backward writeback of the old head. Version-jumping
        // reference versions stay raw permanently.
        if !self.policy.is_reference_version(idx - 1) {
            writebacks.push(Writeback { target: prev, base: new });
        }
        // Hop upgrades: the new record's level determines which pending hop
        // bases can now take their long-range delta.
        let level = (self.policy.level_of(idx) as usize).min(chain.pending_hop.len() - 1);
        for slot in chain.pending_hop.iter_mut().take(level + 1).skip(1) {
            if let Some(target) = slot.take() {
                if target != prev {
                    writebacks.push(Writeback { target, base: new });
                }
                // (If the pending hop base *is* the old head, the ordinary
                // writeback above already targets `new`; one delta suffices.)
            }
        }
        if level >= 1 {
            chain.pending_hop[level] = Some(new);
        }

        self.records.insert(
            new,
            RecordState { chain: chain_id, index: idx, base: None, refcount: 0, deleted: false },
        );
        self.stats.planned_writebacks += writebacks.len() as u64;
        EncodePlan { new_record: new, writebacks, overlapped: false }
    }

    /// Records that a planned writeback reached disk: `target` is now a
    /// delta decoding against `base`.
    pub fn commit_writeback(&mut self, wb: Writeback) {
        let old_base = {
            let t = self.records.get_mut(&wb.target).expect("writeback target tracked");
            t.base.replace(wb.base)
        };
        if let Some(old) = old_base {
            let o = self.records.get_mut(&old).expect("old base tracked");
            o.refcount = o.refcount.saturating_sub(1);
        }
        let b = self.records.get_mut(&wb.base).expect("writeback base tracked");
        b.refcount += 1;
        self.stats.committed_writebacks += 1;
    }

    /// The committed decode base of `id`, if it is stored as a delta.
    pub fn base_of(&self, id: RecordId) -> Option<RecordId> {
        self.records.get(&id).and_then(|r| r.base)
    }

    /// How many records decode through `id`.
    pub fn refcount(&self, id: RecordId) -> u32 {
        self.records.get(&id).map_or(0, |r| r.refcount)
    }

    /// Chain index of `id` (insertion order within its chain).
    pub fn chain_index(&self, id: RecordId) -> Option<u64> {
        self.records.get(&id).map(|r| r.index)
    }

    /// Whether `id` is currently the head (latest record) of its chain.
    pub fn is_head(&self, id: RecordId) -> bool {
        self.records.get(&id).is_some_and(|r| self.chains[r.chain as usize].head == id)
    }

    /// The decode path of `id`: `[id, base, base-of-base, …, raw]`.
    ///
    /// The last element is the raw record; a raw `id` yields `[id]`.
    /// Returns `None` for unknown records.
    pub fn decode_path(&self, id: RecordId) -> Option<Vec<RecordId>> {
        let mut path = vec![id];
        let mut cur = self.records.get(&id)?;
        // Base pointers always point at strictly newer records, so the path
        // is acyclic; the cap is purely defensive.
        for _ in 0..self.records.len() {
            match cur.base {
                None => return Some(path),
                Some(b) => {
                    path.push(b);
                    cur = self.records.get(&b).expect("base must be tracked");
                }
            }
        }
        panic!("decode path exceeded record count — cycle in base pointers");
    }

    /// Number of *source retrievals* needed to reconstruct `id`: the decode
    /// path length minus one (a raw record needs zero).
    pub fn retrievals_for(&self, id: RecordId) -> Option<usize> {
        self.decode_path(id).map(|p| p.len() - 1)
    }

    /// Marks `id` deleted. Returns `true` when it can be physically removed
    /// immediately (refcount zero), `false` when it must linger as a decode
    /// base (§4.1 Delete).
    pub fn mark_deleted(&mut self, id: RecordId) -> bool {
        let r = self.records.get_mut(&id).expect("record tracked");
        r.deleted = true;
        r.refcount == 0
    }

    /// Whether `id` is marked deleted.
    pub fn is_deleted(&self, id: RecordId) -> bool {
        self.records.get(&id).is_some_and(|r| r.deleted)
    }

    /// Physically removes `id` from tracking, decrementing its base's
    /// refcount. Panics if any record still references it.
    pub fn remove(&mut self, id: RecordId) {
        let r = self.records.remove(&id).expect("record tracked");
        assert_eq!(r.refcount, 0, "cannot remove {id}: still a decode base");
        if let Some(b) = r.base {
            if let Some(bs) = self.records.get_mut(&b) {
                bs.refcount = bs.refcount.saturating_sub(1);
            }
        }
        // Clear any chain references to the removed record.
        let chain = &mut self.chains[r.chain as usize];
        for slot in &mut chain.pending_hop {
            if *slot == Some(id) {
                *slot = None;
            }
        }
    }

    /// Deleted records along `id`'s decode path that have become
    /// removable (refcount 1 from the path itself is handled by the GC in
    /// the engine; this lists deleted records for inspection, §4.1 GC).
    pub fn deleted_on_path(&self, id: RecordId) -> Vec<RecordId> {
        self.decode_path(id)
            .map(|p| p.into_iter().filter(|r| self.is_deleted(*r)).collect())
            .unwrap_or_default()
    }

    /// Every record id currently tracked, in ascending id order (sorted
    /// so maintenance sweeps iterate deterministically).
    pub fn tracked_ids(&self) -> Vec<RecordId> {
        let mut ids: Vec<RecordId> = self.records.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Records marked deleted but not yet physically removed — the chain
    /// GC backlog. Ascending id order.
    pub fn deleted_ids(&self) -> Vec<RecordId> {
        let mut ids: Vec<RecordId> =
            self.records.iter().filter(|(_, r)| r.deleted).map(|(&id, _)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// Records whose committed decode base is `id` (the records pinning
    /// it). Ascending id order. Their count equals `refcount(id)`.
    pub fn dependents_of(&self, id: RecordId) -> Vec<RecordId> {
        let mut ids: Vec<RecordId> =
            self.records.iter().filter(|(_, r)| r.base == Some(id)).map(|(&id, _)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// How many records have been appended to `id`'s chain after it —
    /// its distance behind the chain head in versions. Retention policies
    /// cap this depth.
    pub fn depth_behind_head(&self, id: RecordId) -> Option<u64> {
        let r = self.records.get(&id)?;
        let chain = &self.chains[r.chain as usize];
        Some((chain.next_index - 1).saturating_sub(r.index))
    }

    /// Records more than `max_tail` versions behind their chain head and
    /// not already deleted — what a length-capped retention policy
    /// retires next. Ascending id order.
    pub fn retention_candidates(&self, max_tail: u64) -> Vec<RecordId> {
        let mut ids: Vec<RecordId> = self
            .records
            .iter()
            .filter(|(_, r)| {
                !r.deleted
                    && (self.chains[r.chain as usize].next_index - 1).saturating_sub(r.index)
                        > max_tail
            })
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Clears `target`'s committed base: the record is raw again (client
    /// update compaction, or GC of a terminal deleted base). Decrements the
    /// old base's refcount.
    pub fn clear_base(&mut self, target: RecordId) {
        let old = {
            let t = self.records.get_mut(&target).expect("target tracked");
            t.base.take()
        };
        if let Some(old) = old {
            if let Some(o) = self.records.get_mut(&old) {
                o.refcount = o.refcount.saturating_sub(1);
            }
        }
    }

    /// Re-points `target`'s committed base to `new_base` (GC splicing: when
    /// a deleted record is cut out of a chain, its neighbours are joined by
    /// a fresh delta). Adjusts refcounts accordingly.
    pub fn splice_base(&mut self, target: RecordId, new_base: RecordId) {
        let old = {
            let t = self.records.get_mut(&target).expect("target tracked");
            t.base.replace(new_base)
        };
        if let Some(old) = old {
            let o = self.records.get_mut(&old).expect("old base tracked");
            o.refcount = o.refcount.saturating_sub(1);
        }
        let b = self.records.get_mut(&new_base).expect("new base tracked");
        b.refcount += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<RecordId> {
        (0..n).map(RecordId).collect()
    }

    /// Builds a chain of n records under `policy`, committing every planned
    /// writeback, and returns the manager.
    fn build_chain(policy: EncodingPolicy, n: u64) -> ChainManager {
        let mut m = ChainManager::new(policy);
        let ids = ids(n);
        let mut plans = vec![m.start_chain(ids[0])];
        for w in ids.windows(2) {
            plans.push(m.append(w[1], w[0]));
        }
        for p in plans {
            for wb in p.writebacks {
                m.commit_writeback(wb);
            }
        }
        m
    }

    #[test]
    fn backward_chain_topology() {
        let m = build_chain(EncodingPolicy::Backward, 5);
        // r4 is head/raw; r3←r4, r2←r3, ...
        assert_eq!(m.base_of(RecordId(4)), None);
        for i in 0..4u64 {
            assert_eq!(m.base_of(RecordId(i)), Some(RecordId(i + 1)), "record {i}");
        }
        assert_eq!(m.retrievals_for(RecordId(0)), Some(4));
        assert_eq!(m.retrievals_for(RecordId(4)), Some(0));
        assert_eq!(m.refcount(RecordId(4)), 1);
        assert_eq!(m.refcount(RecordId(0)), 0);
    }

    #[test]
    fn hop_chain_matches_fig6() {
        // Fig 6: 17 records, H=4, two hop levels.
        let m = build_chain(EncodingPolicy::Hop { distance: 4, max_levels: 2 }, 17);
        let base = |i: u64| m.base_of(RecordId(i));
        assert_eq!(base(16), None, "head raw");
        assert_eq!(base(0), Some(RecordId(16)), "Δ16,0");
        assert_eq!(base(1), Some(RecordId(2)), "Δ2,1");
        assert_eq!(base(2), Some(RecordId(3)), "Δ3,2");
        assert_eq!(base(3), Some(RecordId(4)), "Δ4,3");
        assert_eq!(base(4), Some(RecordId(8)), "Δ8,4");
        assert_eq!(base(5), Some(RecordId(6)), "Δ6,5");
        assert_eq!(base(6), Some(RecordId(7)), "Δ7,6");
        assert_eq!(base(7), Some(RecordId(8)), "Δ8,7");
        assert_eq!(base(8), Some(RecordId(12)), "Δ12,8");
        assert_eq!(base(12), Some(RecordId(16)), "Δ16,12");
        // R13, R14, R15 follow the level-0 lane.
        assert_eq!(base(15), Some(RecordId(16)));
    }

    #[test]
    fn hop_bounds_worst_case_retrievals() {
        let n = 200u64;
        let h = 8;
        let m = build_chain(EncodingPolicy::Hop { distance: h, max_levels: 3 }, n);
        // Worst case walks ≤ H−1 records in each of the (max_levels + 1)
        // lanes, plus slack for the top lane.
        let bound = (h as usize - 1) * 4 + 8;
        for i in 0..n {
            let r = m.retrievals_for(RecordId(i)).unwrap();
            assert!(r <= bound, "record {i} needs {r} retrievals (bound {bound})");
        }
        // Backward encoding by contrast hits n-1.
        let mb = build_chain(EncodingPolicy::Backward, n);
        assert_eq!(mb.retrievals_for(RecordId(0)), Some((n - 1) as usize));
    }

    #[test]
    fn version_jumping_reference_versions_stay_raw() {
        let m = build_chain(EncodingPolicy::VersionJumping { cluster: 4 }, 12);
        // Indexes 3, 7, 11 are reference versions — never re-encoded.
        for i in [3u64, 7, 11] {
            assert_eq!(m.base_of(RecordId(i)), None, "reference {i} must stay raw");
        }
        // Others point at their successor.
        assert_eq!(m.base_of(RecordId(0)), Some(RecordId(1)));
        assert_eq!(m.base_of(RecordId(4)), Some(RecordId(5)));
        // Worst-case decode bounded by cluster size.
        for i in 0..12u64 {
            assert!(m.retrievals_for(RecordId(i)).unwrap() < 4);
        }
    }

    #[test]
    fn overlapped_encoding_fig5() {
        // R0 ← R1 committed; R2 then selects R0 (not head).
        let mut m = ChainManager::new(EncodingPolicy::Backward);
        m.start_chain(RecordId(0));
        let p1 = m.append(RecordId(1), RecordId(0));
        assert_eq!(p1.writebacks, vec![Writeback { target: RecordId(0), base: RecordId(1) }]);
        for wb in p1.writebacks {
            m.commit_writeback(wb);
        }
        let p2 = m.append(RecordId(2), RecordId(0));
        assert!(p2.overlapped);
        assert_eq!(p2.writebacks, vec![Writeback { target: RecordId(0), base: RecordId(2) }]);
        for wb in p2.writebacks {
            m.commit_writeback(wb);
        }
        // Fig 5 outcome: R1 and R2 both raw, R0 decodes via R2.
        assert_eq!(m.base_of(RecordId(1)), None);
        assert_eq!(m.base_of(RecordId(2)), None);
        assert_eq!(m.base_of(RecordId(0)), Some(RecordId(2)));
        // R1's refcount dropped back to zero when R0 was re-pointed.
        assert_eq!(m.refcount(RecordId(1)), 0);
        assert_eq!(m.refcount(RecordId(2)), 1);
        assert_eq!(m.stats().overlapped_inserts, 1);
    }

    #[test]
    fn dropped_writeback_leaves_record_raw() {
        let mut m = ChainManager::new(EncodingPolicy::Backward);
        m.start_chain(RecordId(0));
        let plan = m.append(RecordId(1), RecordId(0));
        assert_eq!(plan.writebacks.len(), 1);
        // The lossy cache drops it: no commit.
        assert_eq!(m.base_of(RecordId(0)), None, "record stays raw");
        assert_eq!(m.retrievals_for(RecordId(0)), Some(0));
        assert_eq!(m.refcount(RecordId(1)), 0);
    }

    #[test]
    fn delete_semantics() {
        let mut m = build_chain(EncodingPolicy::Backward, 3);
        // r1 is a decode base of r0 → cannot remove immediately.
        assert!(!m.mark_deleted(RecordId(1)));
        assert!(m.is_deleted(RecordId(1)));
        // r0 references nothing → removable at once.
        assert!(m.mark_deleted(RecordId(0)));
        m.remove(RecordId(0));
        assert_eq!(m.refcount(RecordId(1)), 0, "removing r0 releases r1");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn splice_cuts_deleted_record_out() {
        let mut m = build_chain(EncodingPolicy::Backward, 3);
        // Path r0 → r1 → r2. Delete r1, splice r0 directly to r2.
        m.mark_deleted(RecordId(1));
        assert_eq!(m.deleted_on_path(RecordId(0)), vec![RecordId(1)]);
        m.splice_base(RecordId(0), RecordId(2));
        assert_eq!(m.refcount(RecordId(1)), 0);
        m.remove(RecordId(1));
        assert_eq!(m.decode_path(RecordId(0)), Some(vec![RecordId(0), RecordId(2)]));
    }

    #[test]
    fn writeback_counts_match_policy() {
        let n = 64u64;
        let m = build_chain(EncodingPolicy::Backward, n);
        assert_eq!(m.stats().committed_writebacks, n - 1);

        let m = build_chain(EncodingPolicy::VersionJumping { cluster: 8 }, n);
        // n-1 appends; references (every 8th index: 7,15,...,55 before the
        // end) are skipped: 63 - 7 = 56.
        assert_eq!(m.stats().committed_writebacks, (n - 1) - (n / 8 - 1));

        let m = build_chain(EncodingPolicy::Hop { distance: 4, max_levels: 2 }, n);
        // Hand-traced for H=4, two levels, 64 records: 63 ordinary
        // writebacks plus 14 hop upgrades (Table 2's surplus).
        assert_eq!(m.stats().committed_writebacks, 63 + 14);
        // Only the head remains raw: hop bases hold their short-range delta
        // until their upgrade lands.
        let raw = (0..n).filter(|&i| m.base_of(RecordId(i)).is_none()).count();
        assert_eq!(raw, 1);
    }

    #[test]
    fn recover_rebuilds_topology() {
        // Simulate restart state: 0 ← 1 ← 2(raw), 3(raw, independent).
        let mut m = ChainManager::new(EncodingPolicy::default_hop());
        m.recover(vec![
            (RecordId(0), Some(RecordId(1))),
            (RecordId(1), Some(RecordId(2))),
            (RecordId(2), None),
            (RecordId(3), None),
        ]);
        assert_eq!(m.decode_path(RecordId(0)), Some(vec![RecordId(0), RecordId(1), RecordId(2)]));
        assert_eq!(m.refcount(RecordId(2)), 1);
        assert_eq!(m.refcount(RecordId(1)), 1);
        assert_eq!(m.refcount(RecordId(3)), 0);
        assert!(m.is_head(RecordId(2)), "raw record heads its recovered chain");
        assert!(!m.is_head(RecordId(1)), "encoded record is mid-chain");
        // A raw recovered record extends normally.
        let p = m.append(RecordId(10), RecordId(3));
        assert!(!p.overlapped);
        assert_eq!(p.writebacks, vec![Writeback { target: RecordId(3), base: RecordId(10) }]);
        // A mid-chain recovered record takes the overlapped path.
        let p = m.append(RecordId(11), RecordId(1));
        assert!(p.overlapped);
        // Deletion semantics still work on recovered topology.
        assert!(!m.mark_deleted(RecordId(2)), "still referenced");
        assert!(m.mark_deleted(RecordId(0)));
        m.remove(RecordId(0));
        assert_eq!(m.refcount(RecordId(1)), 0);
    }

    #[test]
    #[should_panic(expected = "fresh manager")]
    fn recover_rejects_non_empty() {
        let mut m = ChainManager::new(EncodingPolicy::Backward);
        m.start_chain(RecordId(1));
        m.recover(vec![(RecordId(2), None)]);
    }

    #[test]
    fn is_head_tracks_latest() {
        let mut m = ChainManager::new(EncodingPolicy::default_hop());
        m.start_chain(RecordId(10));
        assert!(m.is_head(RecordId(10)));
        m.append(RecordId(11), RecordId(10));
        assert!(!m.is_head(RecordId(10)));
        assert!(m.is_head(RecordId(11)));
    }

    #[test]
    fn maintenance_accessors_enumerate_deterministically() {
        let mut m = build_chain(EncodingPolicy::Backward, 5);
        assert_eq!(m.tracked_ids(), ids(5));
        assert!(m.deleted_ids().is_empty());
        // Chain 0←1←2←3←4: record 2's sole dependent is record 1.
        assert_eq!(m.dependents_of(RecordId(2)), vec![RecordId(1)]);
        assert_eq!(m.dependents_of(RecordId(0)), Vec::<RecordId>::new());
        m.mark_deleted(RecordId(3));
        m.mark_deleted(RecordId(1));
        assert_eq!(m.deleted_ids(), vec![RecordId(1), RecordId(3)], "sorted backlog");
        assert_eq!(
            m.dependents_of(RecordId(3)).len() as u32,
            m.refcount(RecordId(3)),
            "dependents agree with refcount"
        );
    }

    #[test]
    fn depth_and_retention_candidates() {
        let m = build_chain(EncodingPolicy::Backward, 6);
        assert_eq!(m.depth_behind_head(RecordId(5)), Some(0), "head has depth 0");
        assert_eq!(m.depth_behind_head(RecordId(0)), Some(5));
        assert_eq!(m.depth_behind_head(RecordId(99)), None);
        // Cap the tail at 2 versions: records 0, 1, 2 are over-deep.
        assert_eq!(m.retention_candidates(2), vec![RecordId(0), RecordId(1), RecordId(2)]);
        assert!(m.retention_candidates(5).is_empty());
        // Already-deleted records are not re-proposed.
        let mut m = build_chain(EncodingPolicy::Backward, 6);
        m.mark_deleted(RecordId(0));
        assert_eq!(m.retention_candidates(2), vec![RecordId(1), RecordId(2)]);
    }

    #[test]
    fn independent_chains() {
        let mut m = ChainManager::new(EncodingPolicy::Backward);
        m.start_chain(RecordId(1));
        m.start_chain(RecordId(100));
        let p = m.append(RecordId(2), RecordId(1));
        assert_eq!(p.writebacks.len(), 1);
        assert!(m.is_head(RecordId(100)), "other chain untouched");
        assert_eq!(m.stats().chains, 2);
    }
}
