//! The closed-form cost model of Table 2, plus an empirical simulator.
//!
//! Table 2 of the paper compares the three encoding schemes on a chain of
//! `N` records with base-record size `S_b` and delta size `S_d`
//! (`S_b ≫ S_d`):
//!
//! | scheme            | storage                  | worst retrievals | writebacks        |
//! |-------------------|--------------------------|------------------|-------------------|
//! | backward          | `S_b + (N−1)·S_d`        | `N`              | `N`               |
//! | version jumping   | `N/H·S_b + (N−N/H)·S_d`  | `H`              | `N − N/H`         |
//! | hop               | `S_b + (N−1)·S_d`        | `H + log_H N`    | `N + N·H/(H−1)²`  |
//!
//! The analytic worst-retrieval entry for hop encoding is the paper's
//! (loose) bound; [`simulate`] measures the exact value by building the
//! chain with [`crate::chain::ChainManager`] and walking every decode path.

use crate::chain::ChainManager;
use crate::policy::EncodingPolicy;
use dbdedup_util::ids::RecordId;

/// Cost triple for one encoding scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodingCost {
    /// Expected on-disk bytes for the chain.
    pub storage_bytes: f64,
    /// Worst-case source retrievals to decode any record.
    pub worst_retrievals: f64,
    /// Extra record writes incurred by backward-encoding updates.
    pub writebacks: f64,
}

/// Analytic cost of standard backward encoding (Table 2, row 1).
pub fn backward_cost(n: u64, s_b: f64, s_d: f64) -> EncodingCost {
    EncodingCost {
        storage_bytes: s_b + (n.saturating_sub(1)) as f64 * s_d,
        worst_retrievals: n as f64,
        writebacks: n as f64,
    }
}

/// Analytic cost of version jumping with cluster size `h` (Table 2, row 2).
pub fn version_jumping_cost(n: u64, h: u64, s_b: f64, s_d: f64) -> EncodingCost {
    let refs = (n / h) as f64;
    EncodingCost {
        storage_bytes: refs * s_b + (n as f64 - refs) * s_d,
        worst_retrievals: h as f64,
        writebacks: n as f64 - refs,
    }
}

/// Analytic cost of hop encoding with hop distance `h` (Table 2, row 3).
pub fn hop_cost(n: u64, h: u64, s_b: f64, s_d: f64) -> EncodingCost {
    let hf = h as f64;
    let nf = n as f64;
    EncodingCost {
        storage_bytes: s_b + (n.saturating_sub(1)) as f64 * s_d,
        worst_retrievals: hf + nf.log(hf),
        writebacks: nf + nf * hf / ((hf - 1.0) * (hf - 1.0)),
    }
}

/// Empirical measurement of one policy over a chain of `n` records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedCost {
    /// Records left raw at the end of the chain (each costs `S_b`).
    pub raw_records: u64,
    /// Records stored as deltas (each costs ~`S_d`).
    pub delta_records: u64,
    /// Worst-case decode retrievals over all records.
    pub worst_retrievals: usize,
    /// Mean decode retrievals over all records.
    pub mean_retrievals: f64,
    /// Total committed writebacks.
    pub writebacks: u64,
}

impl SimulatedCost {
    /// Storage bytes under the `S_b`/`S_d` model.
    pub fn storage_bytes(&self, s_b: f64, s_d: f64) -> f64 {
        self.raw_records as f64 * s_b + self.delta_records as f64 * s_d
    }

    /// Compression ratio versus storing every record raw.
    pub fn compression_ratio(&self, s_b: f64, s_d: f64) -> f64 {
        let n = (self.raw_records + self.delta_records) as f64;
        n * s_b / self.storage_bytes(s_b, s_d)
    }
}

/// Builds an `n`-record chain under `policy` (committing every writeback)
/// and measures the real costs.
pub fn simulate(policy: EncodingPolicy, n: u64) -> SimulatedCost {
    assert!(n >= 1);
    let mut m = ChainManager::new(policy);
    let mut plans = vec![m.start_chain(RecordId(0))];
    for i in 1..n {
        plans.push(m.append(RecordId(i), RecordId(i - 1)));
    }
    for p in plans {
        for wb in p.writebacks {
            m.commit_writeback(wb);
        }
    }
    let mut raw = 0u64;
    let mut worst = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        if m.base_of(RecordId(i)).is_none() {
            raw += 1;
        }
        let r = m.retrievals_for(RecordId(i)).expect("record exists");
        worst = worst.max(r);
        total += r;
    }
    SimulatedCost {
        raw_records: raw,
        delta_records: n - raw,
        worst_retrievals: worst,
        mean_retrievals: total as f64 / n as f64,
        writebacks: m.stats().committed_writebacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 200;
    const SB: f64 = 16_384.0;
    const SD: f64 = 256.0;

    #[test]
    fn analytic_rows_reproduce_table2_relationships() {
        let h = 16;
        let bw = backward_cost(N, SB, SD);
        let vj = version_jumping_cost(N, h, SB, SD);
        let hop = hop_cost(N, h, SB, SD);

        // Hop storage equals backward storage; version jumping pays for raw
        // reference versions.
        assert_eq!(hop.storage_bytes, bw.storage_bytes);
        assert!(vj.storage_bytes > hop.storage_bytes * 2.0);

        // Retrievals: backward is O(N); the other two are O(H)-ish.
        assert!(bw.worst_retrievals > vj.worst_retrievals * 10.0);
        assert!(hop.worst_retrievals < vj.worst_retrievals + 3.0);

        // Writebacks: VJ < BW < HOP, converging as H grows.
        assert!(vj.writebacks < bw.writebacks);
        assert!(hop.writebacks > bw.writebacks);
        let hop_big = hop_cost(N, 64, SB, SD);
        assert!(hop_big.writebacks - N as f64 <= N as f64 * 64.0 / (63.0 * 63.0) + 1.0);
    }

    #[test]
    fn simulated_backward() {
        let s = simulate(EncodingPolicy::Backward, N);
        assert_eq!(s.raw_records, 1);
        assert_eq!(s.delta_records, N - 1);
        assert_eq!(s.worst_retrievals, (N - 1) as usize);
        assert_eq!(s.writebacks, N - 1);
    }

    #[test]
    fn simulated_version_jumping() {
        let h = 16;
        let s = simulate(EncodingPolicy::VersionJumping { cluster: h }, N);
        // One raw reference per full cluster, plus the trailing partial
        // cluster's unencoded head region.
        assert!(s.raw_records >= N / h, "raw {}", s.raw_records);
        assert!(s.worst_retrievals < h as usize);
        assert!(s.writebacks <= N - N / h);
    }

    #[test]
    fn simulated_hop_close_to_backward_compression() {
        let s = simulate(EncodingPolicy::Hop { distance: 16, max_levels: 3 }, N);
        let bw = simulate(EncodingPolicy::Backward, N);
        let ratio_hop = s.compression_ratio(SB, SD);
        let ratio_bw = bw.compression_ratio(SB, SD);
        // In the uniform S_b/S_d cost model hop matches backward exactly
        // (only the head is raw); the real-data ~10% loss comes from hop
        // deltas spanning less-similar records, measured in Fig 14's bench.
        assert!(ratio_hop > 0.99 * ratio_bw, "hop {ratio_hop:.2} vs backward {ratio_bw:.2}");
        // And decode cost vastly better than backward.
        assert!(s.worst_retrievals * 4 < bw.worst_retrievals);
    }

    #[test]
    fn simulated_hop_vs_vj_tradeoff_fig14() {
        // Across hop distances, hop encoding must beat VJ on compression
        // while staying in the same retrieval ballpark.
        for h in [4u64, 8, 16, 32] {
            let hop = simulate(EncodingPolicy::Hop { distance: h, max_levels: 3 }, N);
            let vj = simulate(EncodingPolicy::VersionJumping { cluster: h }, N);
            assert!(
                hop.compression_ratio(SB, SD) > vj.compression_ratio(SB, SD),
                "H={h}: hop must out-compress version jumping"
            );
            assert!(
                hop.worst_retrievals <= vj.worst_retrievals * 6 + 8,
                "H={h}: hop retrievals {} vs vj {}",
                hop.worst_retrievals,
                vj.worst_retrievals
            );
        }
    }

    #[test]
    fn single_record_chain() {
        let s = simulate(EncodingPolicy::default_hop(), 1);
        assert_eq!(s.raw_records, 1);
        assert_eq!(s.worst_retrievals, 0);
        assert_eq!(s.writebacks, 0);
    }
}
