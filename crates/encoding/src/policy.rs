//! Encoding policies and hop-level arithmetic.

/// How an encoding chain lays out deltas on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingPolicy {
    /// Standard backward encoding: each record is encoded against its
    /// immediate successor; only the chain head is raw.
    Backward,
    /// Hop encoding (§3.2.2): records at chain index divisible by
    /// `distance^ℓ` are level-ℓ hop bases, encoded against the next record
    /// of level ≥ ℓ. `max_levels` caps the number of hop levels (the paper
    /// observes ≤ 3 in practice).
    Hop {
        /// Minimum interval between hop bases (H).
        distance: u64,
        /// Number of hop levels above level 0.
        max_levels: u32,
    },
    /// Version jumping (prior art): chains are cut into clusters of
    /// `cluster` records; the last record of each cluster (the *reference
    /// version*) stays raw, the rest are backward-encoded.
    VersionJumping {
        /// Cluster size (H in the paper's comparison).
        cluster: u64,
    },
}

impl EncodingPolicy {
    /// The paper's default: hop encoding with distance 16, three levels.
    pub fn default_hop() -> Self {
        EncodingPolicy::Hop { distance: 16, max_levels: 3 }
    }

    /// Number of pending-slot levels this policy needs (level 0 plus hop
    /// levels).
    pub fn levels(&self) -> usize {
        match self {
            EncodingPolicy::Backward | EncodingPolicy::VersionJumping { .. } => 1,
            EncodingPolicy::Hop { max_levels, .. } => *max_levels as usize + 1,
        }
    }

    /// The hop level of chain index `idx` under this policy.
    ///
    /// Level 0 for ordinary records; under hop encoding, the largest
    /// `ℓ ≤ max_levels` such that `distance^ℓ` divides `idx`. Index 0 (the
    /// chain's first record) gets the maximum level — it is the ultimate
    /// ancestor and should only be re-encoded against a top-level base.
    pub fn level_of(&self, idx: u64) -> u32 {
        match self {
            EncodingPolicy::Backward | EncodingPolicy::VersionJumping { .. } => 0,
            EncodingPolicy::Hop { distance, max_levels } => {
                if idx == 0 {
                    return *max_levels;
                }
                let mut level = 0;
                let mut step = *distance;
                while level < *max_levels && idx.is_multiple_of(step) {
                    level += 1;
                    step = step.saturating_mul(*distance);
                }
                level
            }
        }
    }

    /// Whether a record at chain index `idx` is a version-jumping reference
    /// version (stored raw permanently).
    pub fn is_reference_version(&self, idx: u64) -> bool {
        match self {
            EncodingPolicy::VersionJumping { cluster } => idx % cluster == cluster - 1,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_levels_match_fig6() {
        // Fig 6: chain R0..R16, H = 4. Expected levels:
        // R0 → max, R4/R8/R12 → 1, R16 → 2, others → 0.
        let p = EncodingPolicy::Hop { distance: 4, max_levels: 2 };
        assert_eq!(p.level_of(0), 2);
        for i in [1u64, 2, 3, 5, 6, 7, 9, 15] {
            assert_eq!(p.level_of(i), 0, "index {i}");
        }
        for i in [4u64, 8, 12] {
            assert_eq!(p.level_of(i), 1, "index {i}");
        }
        assert_eq!(p.level_of(16), 2);
        assert_eq!(p.level_of(32), 2);
        assert_eq!(p.level_of(64), 2, "levels capped at max_levels");
    }

    #[test]
    fn backward_is_flat() {
        let p = EncodingPolicy::Backward;
        assert_eq!(p.levels(), 1);
        assert_eq!(p.level_of(0), 0);
        assert_eq!(p.level_of(100), 0);
    }

    #[test]
    fn version_jumping_references() {
        let p = EncodingPolicy::VersionJumping { cluster: 4 };
        assert!(!p.is_reference_version(0));
        assert!(p.is_reference_version(3));
        assert!(p.is_reference_version(7));
        assert!(!p.is_reference_version(8));
        assert!(!EncodingPolicy::default_hop().is_reference_version(15));
    }

    #[test]
    fn default_hop_parameters() {
        match EncodingPolicy::default_hop() {
            EncodingPolicy::Hop { distance, max_levels } => {
                assert_eq!(distance, 16);
                assert_eq!(max_levels, 3);
            }
            _ => panic!("wrong default"),
        }
    }
}
