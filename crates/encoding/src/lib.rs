//! # dbdedup-encoding
//!
//! Encoding-chain management for delta-encoded storage (§3.2 of the paper).
//!
//! dbDedup stores a new record raw and rewrites its *source* (the selected
//! similar record) as a backward delta, so the most recent record of every
//! chain is always readable with zero decodes. The crate tracks the
//! resulting base-pointer topology and plans which records must be
//! re-encoded on each insert under three policies:
//!
//! * **Backward encoding** — every predecessor points at its successor;
//!   maximal compression, O(chain-length) worst-case decode.
//! * **Hop encoding** — dbDedup's contribution: records at chain indexes
//!   divisible by `H^ℓ` are *hop bases* of level ℓ and are encoded against
//!   the **next** record of level ≥ ℓ, forming skip-list-style express
//!   lanes. Worst-case decode drops to `H + log_H N` while **every** record
//!   (hop bases included) stays delta-encoded — within ~10% of full
//!   backward compression (Fig. 6, Fig. 14).
//! * **Version jumping** — the prior-art baseline: every H-th record stays
//!   raw, bounding decodes at H but sacrificing those records' compression.
//!
//! [`chain::ChainManager`] separates *planning* (what to write back, done
//! at insert time) from *commitment* (what actually reached disk) because
//! the lossy write-back cache may drop planned writebacks — harmless, the
//! record simply stays raw (§3.3.2). [`analysis`] provides the closed-form
//! cost model of Table 2.
//!
//! ```
//! use dbdedup_encoding::{ChainManager, EncodingPolicy};
//! use dbdedup_util::ids::RecordId;
//!
//! let mut chains = ChainManager::new(EncodingPolicy::default_hop());
//! let mut plans = vec![chains.start_chain(RecordId(0))];
//! for i in 1..50 {
//!     plans.push(chains.append(RecordId(i), RecordId(i - 1)));
//! }
//! for plan in plans {
//!     for wb in plan.writebacks {
//!         chains.commit_writeback(wb); // pretend every delta reached disk
//!     }
//! }
//! // The head is raw; every decode path is bounded by the hop lanes.
//! assert_eq!(chains.retrievals_for(RecordId(49)), Some(0));
//! assert!(chains.retrievals_for(RecordId(0)).unwrap() < 49);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod chain;
pub mod policy;

pub use chain::{ChainManager, EncodePlan, Writeback};
pub use policy::EncodingPolicy;
