//! Property tests for the Bloom prefilter (tiered-index cold tier).
//!
//! Two invariants matter for the ≤1-probe cold-lookup guarantee:
//!
//! 1. **Zero false negatives** — a negative Bloom answer skips the disk
//!    probe entirely, so it must be definitive for every inserted key.
//! 2. **Calibrated false positives** — the measured FP rate must track the
//!    configured target (within 2×, across seeds), because every false
//!    positive is a wasted disk read.

use dbdedup_index::BloomFilter;
use dbdedup_util::dist::SplitMix64;

#[test]
fn zero_false_negatives_across_seeds() {
    for seed in [1u64, 7, 42, 1234, 0xdead_beef] {
        let mut rng = SplitMix64::new(seed);
        let keys: Vec<u64> = (0..5_000).map(|_| rng.next_u64()).collect();
        let mut f = BloomFilter::with_target_fp(keys.len(), 0.01, seed);
        for &k in &keys {
            f.insert(k);
        }
        for &k in &keys {
            assert!(f.contains(k), "false negative for key {k:#x} at seed {seed}");
        }
    }
}

#[test]
fn fp_rate_within_2x_of_target_across_seeds() {
    for target in [0.001f64, 0.01, 0.05] {
        for seed in [3u64, 99, 2026] {
            let mut rng = SplitMix64::new(seed ^ (target.to_bits()));
            let n = 10_000usize;
            let keys: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            let mut f = BloomFilter::with_target_fp(n, target, seed);
            for &k in &keys {
                f.insert(k);
            }
            // Disjoint probe set: fresh random u64 keys collide with the
            // inserted set with probability ~n/2^64 ≈ 0.
            let probes = 200_000usize;
            let mut fp = 0usize;
            for _ in 0..probes {
                if f.contains(rng.next_u64()) {
                    fp += 1;
                }
            }
            let measured = fp as f64 / probes as f64;
            assert!(
                measured <= target * 2.0,
                "target {target} seed {seed}: measured FP {measured} exceeds 2x target"
            );
        }
    }
}

#[test]
fn fp_rate_is_not_degenerately_zero_at_loose_targets() {
    // Sanity check that the measurement above is exercising real collisions
    // (a broken `contains` that always answers false would also "pass").
    let mut rng = SplitMix64::new(77);
    let n = 10_000usize;
    let mut f = BloomFilter::with_target_fp(n, 0.05, 77);
    for _ in 0..n {
        f.insert(rng.next_u64());
    }
    let hits = (0..200_000).filter(|_| f.contains(rng.next_u64())).count();
    assert!(hits > 0, "a 5% filter at full load should show some false positives");
}

#[test]
fn serialization_preserves_membership() {
    let mut rng = SplitMix64::new(11);
    let keys: Vec<u64> = (0..2_000).map(|_| rng.next_u64()).collect();
    let mut f = BloomFilter::with_target_fp(keys.len(), 0.01, 11);
    for &k in &keys {
        f.insert(k);
    }
    let g = BloomFilter::from_parts(f.words().to_vec(), f.k(), f.seed());
    for &k in &keys {
        assert!(g.contains(k), "membership must survive serialization");
    }
    assert_eq!(f, g);
}
