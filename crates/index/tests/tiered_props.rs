//! Differential and behavioral tests for the tiered feature index.
//!
//! The load-bearing contract: with no hot-tier budget the tiered index is
//! *indistinguishable* from the bare cuckoo index (the spill-disabled path
//! stays byte-identical), and with a budget it degrades gracefully — old
//! candidates surface from Bloom-gated disk runs at a cost of at most one
//! probe per lookup.

use dbdedup_index::{
    CuckooConfig, CuckooFeatureIndex, FeatureIndex, PartitionedIndex, TieredConfig,
    TieredFeatureIndex,
};
use dbdedup_util::dist::SplitMix64;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dbdedup-tieredprops-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

/// A fixed-seed workload of (feature, slot) pairs with realistic reuse:
/// features are drawn from a bounded universe so the same feature recurs
/// under many slots, exercising candidate chains.
fn workload(seed: u64, n: usize, universe: u64) -> Vec<(u64, u32)> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let f = SplitMix64::new(rng.next_below(universe)).next_u64();
            (f, i as u32)
        })
        .collect()
}

#[test]
fn unlimited_budget_tiered_equals_pure_cuckoo() {
    for seed in [1u64, 42, 0xfeed] {
        let cfg = CuckooConfig::default();
        let mut bare = CuckooFeatureIndex::new(cfg);
        let mut tiered = TieredFeatureIndex::new(
            TieredConfig { cuckoo: cfg, hot_budget_bytes: None, ..Default::default() },
            "db",
        );
        for (f, s) in workload(seed, 20_000, 3_000) {
            let a = bare.lookup_insert(f, s);
            let b = FeatureIndex::lookup_insert(&mut tiered, f, s);
            assert_eq!(a, b, "candidate sets diverged at seed {seed}, slot {s}");
        }
        assert_eq!(bare.len(), FeatureIndex::len(&tiered));
        assert_eq!(bare.accounted_bytes(), FeatureIndex::accounted_bytes(&tiered));
        assert_eq!(bare.evictions(), tiered.evictions());
        let stats = tiered.stats();
        assert_eq!(stats.spills, 0, "no budget must mean no spills");
        assert_eq!(stats.cold_probes, 0, "no runs must mean no probes");
    }
}

#[test]
fn partitioned_composes_tiered_unchanged() {
    // The generic PartitionedIndex must drive the tiered flavor through the
    // exact same surface the engine uses for the cuckoo flavor.
    let d = tmpdir("partitioned");
    let cfg = TieredConfig {
        hot_budget_bytes: Some(600),
        run_dir: Some(d.clone()),
        ..Default::default()
    };
    let mut p: PartitionedIndex<TieredFeatureIndex> = PartitionedIndex::new(cfg);
    for (f, s) in workload(7, 3_000, 500) {
        p.partition_mut("wiki").lookup_insert(f, s);
    }
    for (f, s) in workload(8, 50, 50) {
        p.partition_mut("mail").lookup_insert(f, s);
    }
    assert_eq!(p.partition_count(), 2);
    assert!(p.partition("wiki").unwrap().stats().spills > 0);
    assert_eq!(p.partition("mail").unwrap().stats().spills, 0);
    assert!(p.accounted_bytes() > 0);
    assert!(p.drop_partition("wiki"));
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn bounded_budget_recovers_spilled_candidates() {
    let d = tmpdir("recover");
    let cfg = TieredConfig {
        hot_budget_bytes: Some(1_200), // ~200 entries per spill
        run_dir: Some(d.clone()),
        ..Default::default()
    };
    let mut idx = TieredFeatureIndex::new(cfg, "db");
    // Insert 2000 distinct features, then revisit the earliest ones: they
    // can only be found via the cold tier.
    let feats: Vec<u64> = (0..2_000u64).map(|i| SplitMix64::new(i).next_u64()).collect();
    for (i, &f) in feats.iter().enumerate() {
        FeatureIndex::lookup_insert(&mut idx, f, i as u32);
    }
    assert!(idx.stats().spills >= 2, "workload must spill repeatedly");
    let mut recovered = 0usize;
    for (i, &f) in feats.iter().take(100).enumerate() {
        let c = FeatureIndex::lookup(&idx, f);
        if c.contains(&(i as u32)) {
            recovered += 1;
        }
    }
    assert!(recovered >= 90, "only {recovered}/100 early candidates recovered from the cold tier");
    let s = idx.stats();
    assert!(s.cold_hits > 0, "recovery must come from cold probes");
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn probe_count_bounded_by_lookups_even_with_many_runs() {
    let d = tmpdir("probebound");
    let cfg = TieredConfig {
        hot_budget_bytes: Some(600),
        run_dir: Some(d.clone()),
        ..Default::default()
    };
    let mut idx = TieredFeatureIndex::new(cfg, "db");
    let wl = workload(99, 8_000, 2_000);
    let n = wl.len() as u64;
    for (f, s) in wl {
        FeatureIndex::lookup_insert(&mut idx, f, s);
    }
    assert!(idx.run_count() >= 3, "want several live runs, got {}", idx.run_count());
    let s = idx.stats();
    assert!(
        s.cold_probes <= n,
        "{} probes over {} lookups: the Bloom gate must cap probes at one per lookup",
        s.cold_probes,
        n
    );
    // The Bloom filters must actually be skipping runs, not just rubber-
    // stamping probes.
    assert!(s.bloom_rejects > 0, "expected Bloom rejections across {} runs", idx.run_count());
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn observed_bloom_fp_rate_stays_calibrated_end_to_end() {
    let d = tmpdir("fpcal");
    let target = 0.01;
    let cfg = TieredConfig {
        hot_budget_bytes: Some(1_200),
        bloom_fp_target: target,
        run_dir: Some(d.clone()),
        ..Default::default()
    };
    let mut idx = TieredFeatureIndex::new(cfg, "db");
    for (f, s) in workload(5, 4_000, 100_000) {
        FeatureIndex::lookup_insert(&mut idx, f, s);
    }
    let s = idx.stats();
    let consultations = s.cold_probes + s.bloom_rejects;
    if consultations > 10_000 {
        let observed = s.bloom_false_probes as f64 / consultations as f64;
        // The checksum universe is only 16 bits, so genuine collisions
        // inflate "false" probes; allow generous headroom while still
        // catching a broken (always-pass) filter.
        assert!(
            observed < 0.25,
            "observed FP-ish probe rate {observed} suggests the Bloom gate is not filtering"
        );
    }
    let _ = std::fs::remove_dir_all(&d);
}
