//! Property tests for the cuckoo feature index: advisory semantics mean
//! entries may be dropped, but the structure must never lie about what it
//! holds, never exceed its candidate cap, and never panic.

use dbdedup_index::{CuckooConfig, CuckooFeatureIndex};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn never_panics_and_caps_candidates(
        features in prop::collection::vec(any::<u64>(), 1..500),
        max_candidates in 1usize..8,
    ) {
        let mut idx = CuckooFeatureIndex::new(CuckooConfig {
            initial_buckets: 16,
            max_candidates,
            ..Default::default()
        });
        for (i, &f) in features.iter().enumerate() {
            let cands = idx.lookup_insert(f, i as u32);
            prop_assert!(cands.len() <= max_candidates);
        }
        prop_assert!(idx.len() <= features.len());
        prop_assert_eq!(idx.accounted_bytes(), idx.len() * 6);
    }

    /// Immediately after inserting a feature, a lookup finds the slot —
    /// unless the structure reported pressure (evictions).
    #[test]
    fn freshly_inserted_is_findable(features in prop::collection::vec(any::<u64>(), 1..200)) {
        let mut idx = CuckooFeatureIndex::default();
        for (i, &f) in features.iter().enumerate() {
            idx.lookup_insert(f, i as u32);
            let found = idx.lookup(f).contains(&(i as u32));
            prop_assert!(
                found || idx.evictions() > 0,
                "fresh entry for feature {:#x} lost without any eviction", f
            );
        }
    }

    /// Lookup is read-only: repeated probes return the same result.
    #[test]
    fn lookup_is_stable(features in prop::collection::vec(any::<u64>(), 1..100)) {
        let mut idx = CuckooFeatureIndex::default();
        for (i, &f) in features.iter().enumerate() {
            idx.lookup_insert(f, i as u32);
        }
        for &f in &features {
            prop_assert_eq!(idx.lookup(f), idx.lookup(f));
        }
    }
}
