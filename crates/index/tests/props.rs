//! Randomized-but-deterministic tests for the cuckoo feature index:
//! advisory semantics mean entries may be dropped, but the structure must
//! never lie about what it holds, never exceed its candidate cap, and
//! never panic. Inputs come from a seeded [`SplitMix64`] stream (proptest
//! is unavailable offline; every failure reproduces from the fixed seeds).

use dbdedup_index::{CuckooConfig, CuckooFeatureIndex};
use dbdedup_util::dist::SplitMix64;

fn rand_features(rng: &mut SplitMix64, min: usize, max: usize) -> Vec<u64> {
    let len = min + rng.next_index(max - min);
    (0..len).map(|_| rng.next_u64()).collect()
}

#[test]
fn never_panics_and_caps_candidates() {
    let mut rng = SplitMix64::new(0x1D2_0001);
    for _ in 0..64 {
        let features = rand_features(&mut rng, 1, 500);
        let max_candidates = 1 + rng.next_index(7);
        let mut idx = CuckooFeatureIndex::new(CuckooConfig {
            initial_buckets: 16,
            max_candidates,
            ..Default::default()
        });
        for (i, &f) in features.iter().enumerate() {
            let cands = idx.lookup_insert(f, i as u32);
            assert!(cands.len() <= max_candidates);
        }
        assert!(idx.len() <= features.len());
        assert_eq!(idx.accounted_bytes(), idx.len() * 6);
    }
}

/// Immediately after inserting a feature, a lookup finds the slot —
/// unless the structure reported pressure (evictions).
#[test]
fn freshly_inserted_is_findable() {
    let mut rng = SplitMix64::new(0x1D2_0002);
    for _ in 0..64 {
        let features = rand_features(&mut rng, 1, 200);
        let mut idx = CuckooFeatureIndex::default();
        for (i, &f) in features.iter().enumerate() {
            idx.lookup_insert(f, i as u32);
            let found = idx.lookup(f).contains(&(i as u32));
            assert!(
                found || idx.evictions() > 0,
                "fresh entry for feature {f:#x} lost without any eviction"
            );
        }
    }
}

/// Lookup is read-only: repeated probes return the same result.
#[test]
fn lookup_is_stable() {
    let mut rng = SplitMix64::new(0x1D2_0003);
    for _ in 0..64 {
        let features = rand_features(&mut rng, 1, 100);
        let mut idx = CuckooFeatureIndex::default();
        for (i, &f) in features.iter().enumerate() {
            idx.lookup_insert(f, i as u32);
        }
        for &f in &features {
            assert_eq!(idx.lookup(f), idx.lookup(f));
        }
    }
}
