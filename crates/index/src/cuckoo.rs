//! The cuckoo-hash feature index (§3.1.2 of the paper).
//!
//! Maps 64-bit chunk features to the records that contained them. The
//! design goals, in order:
//!
//! 1. **Tiny entries.** Each entry stores a 2-byte checksum of the feature
//!    (not the feature itself) and a 4-byte record pointer. At the paper's
//!    K = 8 features per record this caps index RAM at 48 accounted bytes
//!    per record regardless of chunk size — the property Fig. 1 celebrates.
//! 2. **Bounded lookups.** A feature hashes to `num_hashes` candidate
//!    buckets of `bucket_slots` entries each; a probe never touches more
//!    than `num_hashes × bucket_slots` entries.
//! 3. **Graceful degradation.** Checksum collisions produce false-positive
//!    candidates and evictions lose true ones; both are harmless because
//!    delta compression verifies every byte downstream.
//!
//! Lookup and insert are fused ([`CuckooFeatureIndex::lookup_insert`])
//! because the workflow always does both: find candidates similar to the
//! new record, then register the new record under the same feature.

/// Accounted bytes per entry: 2-byte checksum + 4-byte record pointer.
///
/// This is the figure the paper's "index memory usage" plots charge per
/// entry; the implementation's in-memory layout also carries a recency tick
/// (see [`CuckooConfig::charge_recency`] to account for it).
pub const ENTRY_ACCOUNTED_BYTES: usize = 6;

/// Tuning knobs for the feature index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CuckooConfig {
    /// Initial number of buckets (rounded up to a power of two).
    pub initial_buckets: usize,
    /// Entries per bucket.
    pub bucket_slots: usize,
    /// Alternative hash functions per feature.
    pub num_hashes: usize,
    /// Maximum similar-record candidates returned per feature before the
    /// search stops and the LRU match is evicted (§3.1.2).
    pub max_candidates: usize,
    /// Load factor above which the table doubles.
    pub grow_at: f64,
    /// Whether memory accounting includes the 4-byte recency tick this
    /// implementation adds on top of the paper's 6-byte entry.
    pub charge_recency: bool,
}

impl Default for CuckooConfig {
    fn default() -> Self {
        Self {
            initial_buckets: 1024,
            bucket_slots: 4,
            num_hashes: 4,
            max_candidates: 8,
            grow_at: 0.80,
            charge_recency: false,
        }
    }
}

/// One occupied index entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    checksum: u16,
    slot: u32,
    /// Recency tick for LRU eviction; 0 means vacant.
    tick: u32,
}

const VACANT: Entry = Entry { checksum: 0, slot: 0, tick: 0 };

/// The cuckoo-hash feature index.
#[derive(Debug, Clone)]
pub struct CuckooFeatureIndex {
    table: Vec<Entry>,
    bucket_mask: usize,
    config: CuckooConfig,
    entries: usize,
    clock: u32,
    evictions: u64,
}

impl Default for CuckooFeatureIndex {
    fn default() -> Self {
        Self::new(CuckooConfig::default())
    }
}

impl CuckooFeatureIndex {
    /// Creates an empty index.
    pub fn new(config: CuckooConfig) -> Self {
        assert!(config.bucket_slots >= 1 && config.num_hashes >= 1);
        let buckets = config.initial_buckets.next_power_of_two().max(8);
        Self {
            table: vec![VACANT; buckets * config.bucket_slots],
            bucket_mask: buckets - 1,
            config,
            entries: 0,
            clock: 0,
            evictions: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Count of LRU evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Accounted index memory: entries × 6 bytes (the paper's accounting),
    /// or × 10 when [`CuckooConfig::charge_recency`] is set.
    pub fn accounted_bytes(&self) -> usize {
        let per = if self.config.charge_recency { 10 } else { ENTRY_ACCOUNTED_BYTES };
        self.entries * per
    }

    /// Actual allocated table size in bytes (capacity, not occupancy).
    pub fn allocated_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<Entry>()
    }

    /// The 2-byte checksum stored for `feature`: its high 16 bits, with the
    /// reserved vacancy value 0 remapped to 1. Exposed so other tiers (the
    /// on-disk runs) key their entries identically.
    #[inline]
    pub fn feature_checksum(feature: u64) -> u16 {
        Self::checksum_of(feature)
    }

    /// Iterates the occupied entries as `(checksum, slot, recency_tick)`.
    ///
    /// Order is table order (deterministic for a given insert history); the
    /// tick is the LRU clock value, larger = more recently touched.
    pub fn entries(&self) -> impl Iterator<Item = (u16, u32, u32)> + '_ {
        self.table.iter().filter(|e| e.tick != 0).map(|e| (e.checksum, e.slot, e.tick))
    }

    /// Removes and returns every entry as `(checksum, slot, recency_tick)`,
    /// shrinking the table back to its initial capacity.
    ///
    /// The LRU clock and eviction counter survive the drain so recency
    /// ordering and stats stay monotonic across spills to the cold tier.
    pub fn drain_entries(&mut self) -> Vec<(u16, u32, u32)> {
        let out: Vec<(u16, u32, u32)> = self.entries().collect();
        let buckets = self.config.initial_buckets.next_power_of_two().max(8);
        self.table = vec![VACANT; buckets * self.config.bucket_slots];
        self.bucket_mask = buckets - 1;
        self.entries = 0;
        out
    }

    #[inline]
    fn checksum_of(feature: u64) -> u16 {
        // Use high bits so the checksum is independent from the bucket
        // hashes (which consume the mixed low bits). Reserve 0 for vacancy.
        let c = (feature >> 48) as u16;
        if c == 0 {
            1
        } else {
            c
        }
    }

    #[inline]
    fn bucket_of(&self, feature: u64, fn_idx: usize) -> usize {
        // Distinct hash functions by seeding Murmur's 64-bit finalizer with
        // the function index.
        let mut x = feature ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(fn_idx as u64 + 1));
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        (x as usize) & self.bucket_mask
    }

    #[inline]
    fn next_tick(&mut self) -> u32 {
        self.clock = self.clock.wrapping_add(1);
        if self.clock == 0 {
            // Tick wrapped: reset all recency info rather than confusing
            // vacancy (tick 0) with extreme age. Entries keep their data.
            for e in &mut self.table {
                if e.tick != 0 {
                    e.tick = 1;
                }
            }
            self.clock = 2;
        }
        self.clock
    }

    /// Looks up all records sharing `feature` and registers `slot` under it.
    ///
    /// Returns the candidate record slots (possibly empty, capped at
    /// [`CuckooConfig::max_candidates`]), most recently used first. The new
    /// entry goes into the first vacancy along the probe path; if the
    /// search saturates, the least-recently-used matching entry is evicted
    /// to make room, as in the paper.
    pub fn lookup_insert(&mut self, feature: u64, slot: u32) -> Vec<u32> {
        self.maybe_grow();
        let checksum = Self::checksum_of(feature);
        let tick = self.next_tick();
        let slots = self.config.bucket_slots;

        let mut candidates: Vec<(u32, u32)> = Vec::new(); // (tick, slot)
        let mut vacancy: Option<usize> = None;
        let mut lru_idx: Option<usize> = None;

        for f in 0..self.config.num_hashes {
            let b = self.bucket_of(feature, f);
            let base = b * slots;
            let mut bucket_has_vacancy = false;
            for i in base..base + slots {
                let e = self.table[i];
                if e.tick == 0 {
                    if vacancy.is_none() {
                        vacancy = Some(i);
                    }
                    bucket_has_vacancy = true;
                    continue;
                }
                if e.checksum == checksum {
                    candidates.push((e.tick, e.slot));
                    if lru_idx.is_none_or(|li| self.table[li].tick > e.tick) {
                        lru_idx = Some(i);
                    }
                }
            }
            // An empty slot anywhere in a bucket marks the end of the
            // feature's probe chain (§3.1.2).
            if bucket_has_vacancy {
                break;
            }
        }
        // The probe path is a constant number of slots, so examining every
        // match costs the same bound the paper's candidate cap enforces;
        // what matters is returning the most-*recent* K, not the first K
        // in slot order — hot features must not hide the newest version.
        let saturated = candidates.len() >= self.config.max_candidates;

        // Insert the new reference.
        if saturated {
            // Replace the least-recently-used match (the paper's eviction).
            let i = lru_idx.expect("saturated implies at least one match");
            self.table[i] = Entry { checksum, slot, tick };
            self.evictions += 1;
        } else if let Some(i) = vacancy {
            self.table[i] = Entry { checksum, slot, tick };
            self.entries += 1;
        } else {
            // Every probed bucket is full of non-matching entries: evict the
            // oldest entry on the probe path.
            let mut oldest: Option<usize> = None;
            for f in 0..self.config.num_hashes {
                let base = self.bucket_of(feature, f) * slots;
                for i in base..base + slots {
                    if oldest.is_none_or(|o| self.table[o].tick > self.table[i].tick) {
                        oldest = Some(i);
                    }
                }
            }
            let i = oldest.expect("probe path is non-empty");
            self.table[i] = Entry { checksum, slot, tick };
            self.evictions += 1;
        }

        // Most recently used first, capped at the candidate budget.
        candidates.sort_unstable_by_key(|&(tick, _)| std::cmp::Reverse(tick));
        candidates.truncate(self.config.max_candidates);
        candidates.into_iter().map(|(_, s)| s).collect()
    }

    /// Looks up candidates without inserting (used by read-only probes and
    /// tests).
    pub fn lookup(&self, feature: u64) -> Vec<u32> {
        let checksum = Self::checksum_of(feature);
        let slots = self.config.bucket_slots;
        let mut out: Vec<(u32, u32)> = Vec::new();
        for f in 0..self.config.num_hashes {
            let base = self.bucket_of(feature, f) * slots;
            let mut bucket_has_vacancy = false;
            for i in base..base + slots {
                let e = self.table[i];
                if e.tick == 0 {
                    bucket_has_vacancy = true;
                } else if e.checksum == checksum {
                    out.push((e.tick, e.slot));
                }
            }
            if bucket_has_vacancy {
                break;
            }
        }
        out.sort_unstable_by_key(|&(tick, _)| std::cmp::Reverse(tick));
        out.truncate(self.config.max_candidates);
        out.into_iter().map(|(_, s)| s).collect()
    }

    fn maybe_grow(&mut self) {
        let cap = self.table.len();
        if (self.entries as f64) < self.config.grow_at * cap as f64 {
            return;
        }
        let old = std::mem::replace(&mut self.table, vec![VACANT; cap * 2]);
        self.bucket_mask = (cap * 2 / self.config.bucket_slots) - 1;
        self.entries = 0;
        let slots = self.config.bucket_slots;
        for e in old {
            if e.tick == 0 {
                continue;
            }
            // Re-home by checksum: the original feature is gone, so rehash
            // on the 48-bit remnant we kept (checksum + a salt of the old
            // position is not available). We instead re-insert along the
            // probe path derived from the checksum, which preserves
            // *find-ability* for features whose checksum matches — adequate
            // because entries are advisory.
            let pseudo_feature = (u64::from(e.checksum)) << 48 | u64::from(e.slot);
            let mut placed = false;
            for f in 0..self.config.num_hashes {
                let base = self.bucket_of(pseudo_feature, f) * slots;
                for i in base..base + slots {
                    if self.table[i].tick == 0 {
                        self.table[i] = e;
                        self.entries += 1;
                        placed = true;
                        break;
                    }
                }
                if placed {
                    break;
                }
            }
            // Dropped entries on pathological crowding are acceptable.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_lookup_finds_record() {
        let mut idx = CuckooFeatureIndex::default();
        let cands = idx.lookup_insert(0xdead_beef_1234_5678, 7);
        assert!(cands.is_empty(), "first insert has no candidates");
        let cands = idx.lookup_insert(0xdead_beef_1234_5678, 8);
        assert_eq!(cands, vec![7]);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn distinct_features_do_not_collide_normally() {
        let mut idx = CuckooFeatureIndex::default();
        for i in 0..100u64 {
            let feature = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 0xabc0_0000_0000_0000;
            let c = idx.lookup_insert(feature, i as u32);
            assert!(c.is_empty(), "unexpected candidate for fresh feature {i}");
        }
        assert_eq!(idx.len(), 100);
    }

    #[test]
    fn mru_ordering() {
        let mut idx = CuckooFeatureIndex::default();
        let f = 0x1111_2222_3333_4444;
        idx.lookup_insert(f, 1);
        idx.lookup_insert(f, 2);
        let c = idx.lookup_insert(f, 3);
        assert_eq!(c, vec![2, 1], "most recent candidate first");
    }

    #[test]
    fn candidate_cap_and_eviction() {
        let cfg = CuckooConfig { max_candidates: 3, ..Default::default() };
        let mut idx = CuckooFeatureIndex::new(cfg);
        let f = 0x5555_6666_7777_8888;
        for s in 0..10u32 {
            let c = idx.lookup_insert(f, s);
            assert!(c.len() <= 3, "candidate list exceeded cap: {}", c.len());
        }
        assert!(idx.evictions() > 0, "saturation should trigger LRU evictions");
    }

    #[test]
    fn memory_accounting() {
        let mut idx = CuckooFeatureIndex::default();
        for i in 0..50u64 {
            idx.lookup_insert(i << 32 | 0xffff_0000_0000_0000, i as u32);
        }
        assert_eq!(idx.accounted_bytes(), idx.len() * ENTRY_ACCOUNTED_BYTES);
        assert!(idx.allocated_bytes() >= idx.accounted_bytes());
    }

    #[test]
    fn growth_preserves_capacity_for_many_entries() {
        let cfg = CuckooConfig { initial_buckets: 8, ..Default::default() };
        let mut idx = CuckooFeatureIndex::new(cfg);
        for i in 0..10_000u64 {
            idx.lookup_insert(i.wrapping_mul(0xc4ce_b9fe_1a85_ec53) ^ (i << 17), i as u32);
        }
        // Growth keeps most entries; some loss is tolerated by design.
        assert!(idx.len() > 8_000, "retained {} of 10000", idx.len());
    }

    #[test]
    fn lookup_without_insert_is_readonly() {
        let mut idx = CuckooFeatureIndex::default();
        idx.lookup_insert(42 << 50, 1);
        let before = idx.len();
        let c = idx.lookup(42 << 50);
        assert_eq!(c, vec![1]);
        assert_eq!(idx.len(), before);
    }

    #[test]
    fn checksum_zero_is_reserved() {
        // A feature whose top 16 bits are zero still round-trips.
        let mut idx = CuckooFeatureIndex::default();
        idx.lookup_insert(0x0000_1234_5678_9abc, 5);
        let c = idx.lookup(0x0000_1234_5678_9abc);
        assert_eq!(c, vec![5]);
    }

    #[test]
    fn clock_wrap_survives() {
        let mut idx = CuckooFeatureIndex::default();
        idx.clock = u32::MAX - 2;
        for i in 0..10u64 {
            idx.lookup_insert(i << 40 | 0x00ff_0000_0000_0000, i as u32);
        }
        assert_eq!(idx.len(), 10);
        // Entries must all still be discoverable.
        for i in 0..10u64 {
            assert!(!idx.lookup(i << 40 | 0x00ff_0000_0000_0000).is_empty());
        }
    }

    /// Feature derived from real chunk-hash distribution: uniformly random.
    #[test]
    fn load_test_random_features() {
        let mut idx = CuckooFeatureIndex::new(CuckooConfig {
            initial_buckets: 1 << 12,
            ..Default::default()
        });
        let mut x = 0x1234_5678u64;
        for i in 0..100_000u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            idx.lookup_insert(x, i);
        }
        assert!(idx.len() > 90_000);
    }

    #[test]
    fn hash_function_index_matters() {
        let idx = CuckooFeatureIndex::default();
        let f = 0xfeed_face_cafe_beef;
        let b0 = idx.bucket_of(f, 0);
        let b1 = idx.bucket_of(f, 1);
        let b2 = idx.bucket_of(f, 2);
        assert!(b0 != b1 || b1 != b2, "hash functions should disperse");
    }
}
