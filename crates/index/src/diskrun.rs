//! Immutable on-disk feature runs — the cold tier of the tiered index.
//!
//! A run is a sorted, CRC-framed file of `(feature checksum, record slot)`
//! entries spilled from the hot cuckoo tier. Three design rules:
//!
//! 1. **One probe, one read.** Entries are sorted by checksum and indexed
//!    by a 257-slot offset table keyed on the checksum's high byte, so a
//!    probe reads exactly one contiguous byte range from the file.
//! 2. **Zero I/O on misses.** Each run carries a Bloom filter over its
//!    checksums ([`crate::bloom`]); the filter lives in memory, so a lookup
//!    that cannot hit never touches the disk.
//! 3. **Derived data, never fail open.** Runs can be rebuilt from the
//!    record store at any time, so a CRC mismatch or short file at open is
//!    handled by quarantining the file — not by trusting partial contents
//!    and not by failing the engine.
//!
//! ## File format (all little-endian)
//!
//! ```text
//! magic "DDRN" | version u16 | flags u16 | bloom_k u32 | bloom_seed u64
//! | bloom_words u64 | entry_count u64
//! | offsets[257] u32      (entry-index boundaries per checksum high byte)
//! | bloom bit words       (bloom_words × u64)
//! | entries               (entry_count × { checksum u16, slot u32 })
//! | crc32 u32             (over every preceding byte)
//! ```

use crate::bloom::BloomFilter;
use dbdedup_util::hash::crc32;
use dbdedup_util::{ByteReader, ByteWriter};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"DDRN";
const VERSION: u16 = 1;
/// Fixed header bytes before the offset table.
const HEADER_BYTES: usize = 4 + 2 + 2 + 4 + 8 + 8 + 8;
/// Offset-table slots: one per checksum high byte, plus the end sentinel.
const OFFSET_SLOTS: usize = 257;
/// Bytes per serialized entry: u16 checksum + u32 slot.
pub const RUN_ENTRY_BYTES: usize = 6;

/// Why a run file was rejected at open.
#[derive(Debug)]
pub enum RunError {
    /// The file could not be read.
    Io(io::Error),
    /// The file's contents failed validation (CRC, magic, structure).
    Corrupt(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Io(e) => write!(f, "run io error: {e}"),
            RunError::Corrupt(why) => write!(f, "run corrupt: {why}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<io::Error> for RunError {
    fn from(e: io::Error) -> Self {
        RunError::Io(e)
    }
}

/// An open, validated, immutable on-disk feature run.
///
/// Resident state is the Bloom filter plus the offset table; entry data
/// stays on disk and is read one bucket at a time by [`DiskRun::probe`].
#[derive(Debug, Clone)]
pub struct DiskRun {
    path: PathBuf,
    id: u64,
    bloom: BloomFilter,
    offsets: Vec<u32>,
    entry_count: u64,
    entries_base: u64,
    file_bytes: u64,
}

impl DiskRun {
    /// Writes a new run at `path` (atomically: temp file + rename) and
    /// returns it opened. `entries` are `(checksum, slot)` pairs; they are
    /// stably sorted by checksum, so the caller's within-checksum order
    /// (newest first) is preserved and becomes the probe order.
    pub fn write(
        path: &Path,
        id: u64,
        entries: &[(u16, u32)],
        bloom_fp_target: f64,
    ) -> io::Result<DiskRun> {
        let mut sorted: Vec<(u16, u32)> = entries.to_vec();
        sorted.sort_by_key(|&(c, _)| c);

        // Bloom over the distinct checksums; seed derived from the run id so
        // files are byte-deterministic for a given input.
        let distinct = {
            let mut d = 0usize;
            let mut last: Option<u16> = None;
            for &(c, _) in &sorted {
                if last != Some(c) {
                    d += 1;
                    last = Some(c);
                }
            }
            d
        };
        let mut bloom =
            BloomFilter::with_target_fp(distinct, bloom_fp_target, id.wrapping_mul(0x9e37) ^ 0x51);
        let mut offsets = vec![0u32; OFFSET_SLOTS];
        {
            let mut last: Option<u16> = None;
            for &(c, _) in &sorted {
                if last != Some(c) {
                    bloom.insert(u64::from(c));
                    last = Some(c);
                }
            }
            // offsets[b] = index of first entry with high byte >= b.
            let mut idx = 0usize;
            for b in 0..=256usize {
                while idx < sorted.len() && usize::from(sorted[idx].0 >> 8) < b {
                    idx += 1;
                }
                offsets[b.min(OFFSET_SLOTS - 1)] = idx as u32;
            }
            offsets[OFFSET_SLOTS - 1] = sorted.len() as u32;
        }

        let mut w = ByteWriter::with_capacity(
            HEADER_BYTES + OFFSET_SLOTS * 4 + bloom.words().len() * 8 + sorted.len() * 6 + 4,
        );
        w.put_bytes(MAGIC);
        w.put_u16(VERSION);
        w.put_u16(0); // flags
        w.put_u32(bloom.k());
        w.put_u64(bloom.seed());
        w.put_u64(bloom.words().len() as u64);
        w.put_u64(sorted.len() as u64);
        for &o in &offsets {
            w.put_u32(o);
        }
        for &word in bloom.words() {
            w.put_u64(word);
        }
        for &(c, s) in &sorted {
            w.put_u16(c);
            w.put_u32(s);
        }
        let body = w.into_vec();
        let crc = crc32(&body);

        let tmp = path.with_extension("tmp");
        {
            let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
            f.write_all(&body)?;
            f.write_all(&crc.to_le_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Self::open(path, id).map_err(|e| match e {
            RunError::Io(io) => io,
            RunError::Corrupt(why) => io::Error::other(format!("just-written run invalid: {why}")),
        })
    }

    /// Opens and validates a run file. Any structural or CRC failure yields
    /// [`RunError::Corrupt`]; the caller quarantines such files.
    pub fn open(path: &Path, id: u64) -> Result<DiskRun, RunError> {
        let bytes = fs::read(path)?;
        if bytes.len() < HEADER_BYTES + OFFSET_SLOTS * 4 + 4 {
            return Err(RunError::Corrupt(format!("short file: {} bytes", bytes.len())));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != stored {
            return Err(RunError::Corrupt("crc mismatch".into()));
        }
        let mut r = ByteReader::new(body);
        let magic = r.get_bytes(4).map_err(|_| RunError::Corrupt("truncated magic".into()))?;
        if magic != MAGIC {
            return Err(RunError::Corrupt("bad magic".into()));
        }
        let bad = |_| RunError::Corrupt("truncated header".into());
        let version = r.get_u16().map_err(bad)?;
        if version != VERSION {
            return Err(RunError::Corrupt(format!("unsupported version {version}")));
        }
        let _flags = r.get_u16().map_err(bad)?;
        let bloom_k = r.get_u32().map_err(bad)?;
        let bloom_seed = r.get_u64().map_err(bad)?;
        let bloom_words = r.get_u64().map_err(bad)? as usize;
        let entry_count = r.get_u64().map_err(bad)?;
        let mut offsets = Vec::with_capacity(OFFSET_SLOTS);
        for _ in 0..OFFSET_SLOTS {
            offsets.push(r.get_u32().map_err(|_| RunError::Corrupt("truncated offsets".into()))?);
        }
        if offsets.windows(2).any(|w| w[0] > w[1])
            || u64::from(offsets[OFFSET_SLOTS - 1]) != entry_count
        {
            return Err(RunError::Corrupt("offset table inconsistent".into()));
        }
        let mut words = Vec::with_capacity(bloom_words);
        for _ in 0..bloom_words {
            words.push(r.get_u64().map_err(|_| RunError::Corrupt("truncated bloom".into()))?);
        }
        let entries_base = (HEADER_BYTES + OFFSET_SLOTS * 4 + bloom_words * 8) as u64;
        let expect = entries_base + entry_count * RUN_ENTRY_BYTES as u64 + 4;
        if bytes.len() as u64 != expect {
            return Err(RunError::Corrupt(format!(
                "length mismatch: have {} want {expect}",
                bytes.len()
            )));
        }
        Ok(DiskRun {
            path: path.to_path_buf(),
            id,
            bloom: BloomFilter::from_parts(words, bloom_k, bloom_seed),
            offsets,
            entry_count,
            entries_base,
            file_bytes: bytes.len() as u64,
        })
    }

    /// Whether `checksum` might be present. Pure in-memory Bloom check —
    /// zero I/O, and `false` is definitive.
    pub fn may_contain(&self, checksum: u16) -> bool {
        self.bloom.contains(u64::from(checksum))
    }

    /// Reads the slots recorded for `checksum`: one contiguous read of the
    /// checksum's high-byte bucket, then an exact filter. Order is file
    /// order (newest first within a checksum, by construction).
    pub fn probe(&self, checksum: u16) -> io::Result<Vec<u32>> {
        let hi = usize::from(checksum >> 8);
        let start = self.offsets[hi] as u64;
        let end = self.offsets[hi + 1] as u64;
        if start >= end {
            return Ok(Vec::new());
        }
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(self.entries_base + start * RUN_ENTRY_BYTES as u64))?;
        let mut buf = vec![0u8; ((end - start) as usize) * RUN_ENTRY_BYTES];
        f.read_exact(&mut buf)?;
        let mut out = Vec::new();
        for chunk in buf.chunks_exact(RUN_ENTRY_BYTES) {
            let c = u16::from_le_bytes([chunk[0], chunk[1]]);
            if c == checksum {
                out.push(u32::from_le_bytes([chunk[2], chunk[3], chunk[4], chunk[5]]));
            }
        }
        Ok(out)
    }

    /// Reads every entry back (merge path), re-verifying the CRC so a file
    /// corrupted after open is caught rather than merged onward.
    pub fn read_all(&self) -> Result<Vec<(u16, u32)>, RunError> {
        let bytes = fs::read(&self.path)?;
        let expect = self.entries_base + self.entry_count * RUN_ENTRY_BYTES as u64 + 4;
        if bytes.len() as u64 != expect {
            return Err(RunError::Corrupt("length changed since open".into()));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != stored {
            return Err(RunError::Corrupt("crc mismatch".into()));
        }
        let data = &body[self.entries_base as usize..];
        let mut out = Vec::with_capacity(self.entry_count as usize);
        for chunk in data.chunks_exact(RUN_ENTRY_BYTES) {
            out.push((
                u16::from_le_bytes([chunk[0], chunk[1]]),
                u32::from_le_bytes([chunk[2], chunk[3], chunk[4], chunk[5]]),
            ));
        }
        Ok(out)
    }

    /// Deletes the backing file (rebuild / merge retirement).
    pub fn delete(&self) -> io::Result<()> {
        fs::remove_file(&self.path)
    }

    /// Renames the backing file aside with a `.quarantined` extension so a
    /// corrupt run never gets re-opened (falls back to deletion).
    pub fn quarantine_path(path: &Path) {
        let aside = path.with_extension("quarantined");
        if fs::rename(path, &aside).is_err() {
            let _ = fs::remove_file(path);
        }
    }

    /// The run's numeric id (monotonic per partition; larger = newer).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of entries in the run.
    pub fn len(&self) -> usize {
        self.entry_count as usize
    }

    /// Whether the run holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Size of the backing file in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Resident memory held for this run (Bloom bits + offset table).
    pub fn resident_bytes(&self) -> usize {
        self.bloom.resident_bytes() + self.offsets.len() * 4
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dbdedup-diskrun-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn write_open_probe_roundtrip() {
        let d = tmpdir("roundtrip");
        let entries: Vec<(u16, u32)> = (0..500u32).map(|i| ((i % 300) as u16 + 1, i)).collect();
        let run = DiskRun::write(&d.join("00000001.run"), 1, &entries, 0.01).expect("write");
        assert_eq!(run.len(), 500);
        for c in 1u16..=300 {
            assert!(run.may_contain(c), "bloom must pass inserted checksum {c}");
            let slots = run.probe(c).expect("probe");
            let want: Vec<u32> =
                entries.iter().filter(|&&(ec, _)| ec == c).map(|&(_, s)| s).collect();
            assert_eq!(slots, want, "checksum {c}");
        }
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn crc_mismatch_is_corrupt() {
        let d = tmpdir("crc");
        let path = d.join("00000001.run");
        DiskRun::write(&path, 1, &[(7, 1), (9, 2)], 0.01).expect("write");
        let mut bytes = fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        match DiskRun::open(&path, 1) {
            Err(RunError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_tail_is_corrupt() {
        let d = tmpdir("torn");
        let path = d.join("00000001.run");
        DiskRun::write(&path, 1, &(0..100).map(|i| (i as u16 + 1, i)).collect::<Vec<_>>(), 0.01)
            .expect("write");
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 13]).expect("truncate");
        assert!(matches!(DiskRun::open(&path, 1), Err(RunError::Corrupt(_))));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn empty_run_roundtrips() {
        let d = tmpdir("empty");
        let run = DiskRun::write(&d.join("0.run"), 0, &[], 0.01).expect("write");
        assert!(run.is_empty());
        assert!(run.probe(5).expect("probe").is_empty());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn read_all_returns_sorted_entries() {
        let d = tmpdir("readall");
        let entries = vec![(30u16, 3u32), (10, 1), (20, 2), (10, 9)];
        let run = DiskRun::write(&d.join("0.run"), 0, &entries, 0.01).expect("write");
        let back = run.read_all().expect("read_all");
        assert_eq!(back, vec![(10, 1), (10, 9), (20, 2), (30, 3)], "stable checksum sort");
        let _ = fs::remove_dir_all(&d);
    }
}
