//! # dbdedup-index
//!
//! The in-memory indexes that make dedup candidate lookup fast — step ② of
//! the dbDedup workflow.
//!
//! * [`cuckoo`] — dbDedup's feature index: a cuckoo hash table whose entries
//!   are a 2-byte feature checksum plus a 4-byte record pointer. Multiple
//!   hash functions give constant-bounded lookups at high load factors, and
//!   an LRU-style eviction policy bounds both memory and the number of
//!   candidates examined per feature (§3.1.2). Because candidates are always
//!   verified by byte-level delta compression downstream, the index may
//!   return false positives and may drop entries freely — neither affects
//!   correctness, only the compression ratio.
//! * [`partitioned`] — the per-database partitioning used by the dedup
//!   governor: duplication rarely crosses database boundaries, so each
//!   database gets its own partition which the governor can drop wholesale
//!   (§3.4.1).
//! * [`exact`] — the full chunk-hash index of the traditional exact-match
//!   dedup baseline: every unique chunk keyed by its 20-byte SHA-1. Its
//!   memory accounting is what Figs. 1 and 10 compare against.
//! * [`tiered`] / [`diskrun`] / [`bloom`] — the memory-bounded tiered
//!   index: the cuckoo table as a hot tier plus immutable sorted on-disk
//!   runs spilled when a byte budget is reached, each fronted by an
//!   in-memory Bloom filter so cold lookups cost at most one disk probe.
//!   All tiers sit behind the [`partitioned::FeatureIndex`] trait, so
//!   [`PartitionedFeatureIndex`] composes either flavor unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod cuckoo;
pub mod diskrun;
pub mod exact;
pub mod partitioned;
pub mod tiered;

pub use bloom::BloomFilter;
pub use cuckoo::{CuckooConfig, CuckooFeatureIndex};
pub use diskrun::{DiskRun, RunError};
pub use exact::ExactChunkIndex;
pub use partitioned::{FeatureIndex, PartitionedFeatureIndex, PartitionedIndex};
pub use tiered::{MergeOutcome, TieredConfig, TieredFeatureIndex, TieredStats};
