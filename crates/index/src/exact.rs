//! The exact-match chunk index used by the traditional-dedup baseline.
//!
//! Exact dedup must index **every unique chunk** under a
//! collision-resistant identity: a collision silently substitutes one
//! chunk's bytes for another's, so SHA-1's 20 bytes cannot be shrunk the
//! way dbDedup shrinks features to 2-byte checksums. The resulting memory
//! curve — linear in unique chunks, exploding as chunk size drops — is the
//! counterpoint in Figs. 1 and 10.

use dbdedup_util::hash::fx::FxHashMap;
use dbdedup_util::hash::sha1::Sha1Digest;

/// Accounted bytes per index entry: 20-byte SHA-1 key + 8-byte location.
pub const ENTRY_ACCOUNTED_BYTES: usize = 28;

/// Where a previously stored chunk lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkLocation {
    /// The record that first contained the chunk.
    pub record: u64,
    /// Byte offset of the chunk within that record.
    pub offset: u32,
    /// Chunk length.
    pub len: u32,
}

/// Global chunk-hash index: SHA-1 → first-seen location.
#[derive(Debug, Default, Clone)]
pub struct ExactChunkIndex {
    map: FxHashMap<Sha1Digest, ChunkLocation>,
}

impl ExactChunkIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of unique chunks indexed.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no chunks are indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Accounted index memory: unique chunks × 28 bytes.
    pub fn accounted_bytes(&self) -> usize {
        self.map.len() * ENTRY_ACCOUNTED_BYTES
    }

    /// Checks whether `digest` is a known chunk; if not, registers it at
    /// `location`. Returns the prior location for duplicates, `None` for
    /// unique chunks.
    pub fn check_insert(
        &mut self,
        digest: Sha1Digest,
        location: ChunkLocation,
    ) -> Option<ChunkLocation> {
        match self.map.entry(digest) {
            std::collections::hash_map::Entry::Occupied(e) => Some(*e.get()),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(location);
                None
            }
        }
    }

    /// Read-only duplicate probe.
    pub fn get(&self, digest: &Sha1Digest) -> Option<ChunkLocation> {
        self.map.get(digest).copied()
    }

    /// Drops every entry (used when the governor disables a database).
    pub fn clear(&mut self) {
        self.map.clear();
        self.map.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdedup_util::hash::sha1::sha1;

    fn loc(r: u64) -> ChunkLocation {
        ChunkLocation { record: r, offset: 0, len: 64 }
    }

    #[test]
    fn unique_then_duplicate() {
        let mut idx = ExactChunkIndex::new();
        let d = sha1(b"some chunk content");
        assert_eq!(idx.check_insert(d, loc(1)), None);
        assert_eq!(idx.check_insert(d, loc(2)), Some(loc(1)));
        assert_eq!(idx.len(), 1, "duplicate must not add an entry");
    }

    #[test]
    fn different_chunks_coexist() {
        let mut idx = ExactChunkIndex::new();
        for i in 0..1000u32 {
            let d = sha1(&i.to_le_bytes());
            assert_eq!(idx.check_insert(d, loc(u64::from(i))), None);
        }
        assert_eq!(idx.len(), 1000);
        assert_eq!(idx.accounted_bytes(), 1000 * ENTRY_ACCOUNTED_BYTES);
    }

    #[test]
    fn get_is_readonly() {
        let mut idx = ExactChunkIndex::new();
        let d = sha1(b"x");
        assert_eq!(idx.get(&d), None);
        idx.check_insert(d, loc(9));
        assert_eq!(idx.get(&d), Some(loc(9)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn clear_releases() {
        let mut idx = ExactChunkIndex::new();
        idx.check_insert(sha1(b"a"), loc(1));
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.accounted_bytes(), 0);
    }
}
