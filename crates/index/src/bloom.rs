//! Seedable Bloom filter — the zero-I/O prefilter in front of each on-disk
//! feature run.
//!
//! A cold-tier lookup first asks the run's in-memory Bloom filter whether
//! the feature checksum *might* be present. A negative answer is definitive
//! (no false negatives by construction), so a lookup that cannot hit costs
//! zero disk reads; a positive answer costs at most one probe, and the
//! false-positive rate — the fraction of probes that find nothing — is
//! tunable via [`BloomFilter::with_target_fp`]. This is the LSHBloom
//! arrangement: a compact probabilistic summary keeps disk-resident index
//! tiers at ~one probe per lookup.
//!
//! The filter uses classic double hashing (Kirsch–Mitzenmacher): two
//! independent 64-bit hashes `h1`, `h2` derived from a SplitMix64-style
//! finalizer generate the `k` bit positions as `h1 + i·h2`. All state is
//! plain words, so the filter serializes verbatim into run files.

/// A fixed-size Bloom filter over `u64` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    words: Vec<u64>,
    num_bits: u64,
    k: u32,
    seed: u64,
}

#[inline]
fn mix64(mut z: u64) -> u64 {
    // SplitMix64 finalizer: full-avalanche over 64 bits.
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl BloomFilter {
    /// Creates an empty filter with exactly `num_bits` bits (rounded up to a
    /// whole 64-bit word, minimum one word) and `k` hash functions.
    pub fn new(num_bits: u64, k: u32, seed: u64) -> Self {
        let words = num_bits.max(1).div_ceil(64) as usize;
        Self { words: vec![0; words], num_bits: words as u64 * 64, k: k.clamp(1, 16), seed }
    }

    /// Sizes a filter for `expected_items` keys at false-positive rate
    /// `target_fp` (clamped to a sane range), using the standard optimum
    /// `m = -n·ln(p)/ln(2)²` bits and `k = (m/n)·ln(2)` hashes.
    pub fn with_target_fp(expected_items: usize, target_fp: f64, seed: u64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = target_fp.clamp(1e-6, 0.5);
        let ln2 = std::f64::consts::LN_2;
        let m = (-(n * p.ln()) / (ln2 * ln2)).ceil().max(64.0);
        let k = ((m / n) * ln2).round().clamp(1.0, 16.0);
        Self::new(m as u64, k as u32, seed)
    }

    /// Reconstructs a filter from serialized parts (the run-file header).
    pub fn from_parts(words: Vec<u64>, k: u32, seed: u64) -> Self {
        let words = if words.is_empty() { vec![0] } else { words };
        let num_bits = words.len() as u64 * 64;
        Self { words, num_bits, k: k.clamp(1, 16), seed }
    }

    #[inline]
    fn hashes(&self, key: u64) -> (u64, u64) {
        let h1 = mix64(key ^ self.seed);
        // Force h2 odd so successive probes never degenerate to one bit.
        let h2 = mix64(h1 ^ 0xdead_beef_cafe_f00d) | 1;
        (h1, h2)
    }

    /// Sets the bits for `key`.
    pub fn insert(&mut self, key: u64) {
        let (h1, h2) = self.hashes(key);
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// Whether `key` might have been inserted. `false` is definitive.
    pub fn contains(&self, key: u64) -> bool {
        let (h1, h2) = self.hashes(key);
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            if self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// The filter's bit array as 64-bit words (for serialization).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of hash functions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total bits in the filter.
    pub fn num_bits(&self) -> u64 {
        self.num_bits
    }

    /// Resident memory of the bit array in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_target_fp(1000, 0.01, 42);
        for i in 0..1000u64 {
            f.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        for i in 0..1000u64 {
            assert!(f.contains(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)), "false negative at {i}");
        }
    }

    #[test]
    fn roundtrip_through_parts() {
        let mut f = BloomFilter::with_target_fp(100, 0.02, 7);
        for i in 0..100u64 {
            f.insert(i << 13 | 5);
        }
        let g = BloomFilter::from_parts(f.words().to_vec(), f.k(), f.seed());
        assert_eq!(f, g);
        for i in 0..100u64 {
            assert!(g.contains(i << 13 | 5));
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::with_target_fp(100, 0.01, 1);
        let hits = (0..1000u64).filter(|&i| f.contains(mix64(i))).count();
        assert_eq!(hits, 0, "empty filter must reject everything");
    }

    #[test]
    fn sizing_scales_with_target() {
        let strict = BloomFilter::with_target_fp(1000, 0.001, 0);
        let loose = BloomFilter::with_target_fp(1000, 0.1, 0);
        assert!(strict.num_bits() > loose.num_bits());
        assert!(strict.k() >= loose.k());
    }
}
