//! Per-database partitioning of the feature index (§3.4.1).
//!
//! Duplication in operational workloads almost never crosses logical
//! database boundaries — a wiki's revisions don't overlap an email corpus —
//! so indexing them together buys nothing and costs memory. dbDedup
//! therefore keeps one feature-index partition per database; when the dedup
//! governor disables a database, its entire partition is deleted in O(1)
//! and the memory returns to the system.
//!
//! The partition set is generic over the [`FeatureIndex`] trait so the same
//! wrapper composes either the bare in-memory cuckoo tier
//! ([`CuckooFeatureIndex`]) or the memory-bounded tiered index
//! ([`crate::tiered::TieredFeatureIndex`]) without the engine caring which.

use crate::cuckoo::{CuckooConfig, CuckooFeatureIndex};
use std::collections::HashMap;

/// The behavior a feature-index tier must provide to participate in
/// per-database partitioning.
///
/// Implementations are *advisory*: they may return false-positive
/// candidates and may lose entries, because the engine verifies every
/// candidate with byte-level delta compression downstream.
pub trait FeatureIndex {
    /// Configuration shared by every partition.
    type Config: Clone;

    /// Creates an empty index for `partition` (the database name; tiers
    /// with on-disk state key their files by it).
    fn create(config: &Self::Config, partition: &str) -> Self;

    /// Looks up all records sharing `feature` and registers `slot` under
    /// it; returns candidates most-relevant first.
    fn lookup_insert(&mut self, feature: u64, slot: u32) -> Vec<u32>;

    /// Looks up candidates without inserting.
    fn lookup(&self, feature: u64) -> Vec<u32>;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// Whether the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accounted memory in bytes (the paper's per-entry accounting plus any
    /// tier-resident overhead).
    fn accounted_bytes(&self) -> usize;

    /// Actual allocated memory in bytes (capacity, not occupancy).
    fn allocated_bytes(&self) -> usize;

    /// Count of entries lost to capacity eviction.
    fn evictions(&self) -> u64;

    /// Called before the partition is dropped so tiers with on-disk state
    /// can delete it (runs are derived data; orphan files must not survive
    /// a governor disable).
    fn discard(&mut self) {}
}

impl FeatureIndex for CuckooFeatureIndex {
    type Config = CuckooConfig;

    fn create(config: &CuckooConfig, _partition: &str) -> Self {
        CuckooFeatureIndex::new(*config)
    }

    fn lookup_insert(&mut self, feature: u64, slot: u32) -> Vec<u32> {
        CuckooFeatureIndex::lookup_insert(self, feature, slot)
    }

    fn lookup(&self, feature: u64) -> Vec<u32> {
        CuckooFeatureIndex::lookup(self, feature)
    }

    fn len(&self) -> usize {
        CuckooFeatureIndex::len(self)
    }

    fn accounted_bytes(&self) -> usize {
        CuckooFeatureIndex::accounted_bytes(self)
    }

    fn allocated_bytes(&self) -> usize {
        CuckooFeatureIndex::allocated_bytes(self)
    }

    fn evictions(&self) -> u64 {
        CuckooFeatureIndex::evictions(self)
    }
}

/// A set of per-database feature-index partitions.
#[derive(Debug)]
pub struct PartitionedIndex<I: FeatureIndex> {
    partitions: HashMap<String, I>,
    config: I::Config,
}

/// The classic all-in-memory partition set (the paper's configuration).
pub type PartitionedFeatureIndex = PartitionedIndex<CuckooFeatureIndex>;

impl<I: FeatureIndex> Default for PartitionedIndex<I>
where
    I::Config: Default,
{
    fn default() -> Self {
        Self::new(I::Config::default())
    }
}

impl<I: FeatureIndex> PartitionedIndex<I> {
    /// Creates an empty partition set; new partitions use `config`.
    pub fn new(config: I::Config) -> Self {
        Self { partitions: HashMap::new(), config }
    }

    /// The partition for `db`, created on first use.
    pub fn partition_mut(&mut self, db: &str) -> &mut I {
        if !self.partitions.contains_key(db) {
            self.partitions.insert(db.to_string(), I::create(&self.config, db));
        }
        self.partitions.get_mut(db).expect("just inserted")
    }

    /// Read-only access to a partition, if it exists.
    pub fn partition(&self, db: &str) -> Option<&I> {
        self.partitions.get(db)
    }

    /// Deletes a database's partition outright (governor disable path),
    /// letting the tier discard any on-disk state first. Returns whether a
    /// partition existed.
    pub fn drop_partition(&mut self, db: &str) -> bool {
        match self.partitions.remove(db) {
            Some(mut p) => {
                p.discard();
                true
            }
            None => false,
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Partition names in sorted order (deterministic iteration for
    /// maintenance and metrics).
    pub fn partition_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.partitions.keys().cloned().collect();
        names.sort();
        names
    }

    /// Total accounted memory across all partitions.
    pub fn accounted_bytes(&self) -> usize {
        self.partitions.values().map(|p| p.accounted_bytes()).sum()
    }

    /// Total allocated memory across all partitions.
    pub fn allocated_bytes(&self) -> usize {
        self.partitions.values().map(|p| p.allocated_bytes()).sum()
    }

    /// Total capacity evictions across all partitions.
    pub fn evictions(&self) -> u64 {
        self.partitions.values().map(|p| p.evictions()).sum()
    }

    /// Total live entries across all partitions.
    pub fn len(&self) -> usize {
        self.partitions.values().map(|p| p.len()).sum()
    }

    /// Whether every partition is empty (or none exist).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_are_isolated() {
        let mut p = PartitionedFeatureIndex::new(CuckooConfig::default());
        p.partition_mut("wiki").lookup_insert(0xaaaa_0000_0000_0001, 1);
        p.partition_mut("mail").lookup_insert(0xaaaa_0000_0000_0001, 2);
        assert_eq!(p.partition("wiki").unwrap().lookup(0xaaaa_0000_0000_0001), vec![1]);
        assert_eq!(p.partition("mail").unwrap().lookup(0xaaaa_0000_0000_0001), vec![2]);
        assert_eq!(p.partition_count(), 2);
    }

    #[test]
    fn drop_partition_frees_memory() {
        let mut p = PartitionedFeatureIndex::new(CuckooConfig::default());
        for i in 0..100u64 {
            p.partition_mut("wiki").lookup_insert(i << 32 | 0xff00_0000_0000_0000, i as u32);
        }
        let before = p.accounted_bytes();
        assert!(before > 0);
        assert!(p.drop_partition("wiki"));
        assert!(!p.drop_partition("wiki"), "second drop is a no-op");
        assert_eq!(p.accounted_bytes(), 0);
        assert_eq!(p.partition("wiki").map(|x| x.len()), None);
    }

    #[test]
    fn totals_aggregate() {
        let mut p = PartitionedFeatureIndex::new(CuckooConfig::default());
        p.partition_mut("a").lookup_insert(1 << 50, 1);
        p.partition_mut("b").lookup_insert(2 << 50, 2);
        p.partition_mut("b").lookup_insert(3 << 50, 3);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn partition_names_are_sorted() {
        let mut p = PartitionedFeatureIndex::new(CuckooConfig::default());
        for db in ["zeta", "alpha", "mid"] {
            p.partition_mut(db).lookup_insert(9 << 50, 1);
        }
        assert_eq!(p.partition_names(), vec!["alpha", "mid", "zeta"]);
    }
}
