//! Per-database partitioning of the feature index (§3.4.1).
//!
//! Duplication in operational workloads almost never crosses logical
//! database boundaries — a wiki's revisions don't overlap an email corpus —
//! so indexing them together buys nothing and costs memory. dbDedup
//! therefore keeps one feature-index partition per database; when the dedup
//! governor disables a database, its entire partition is deleted in O(1)
//! and the memory returns to the system.

use crate::cuckoo::{CuckooConfig, CuckooFeatureIndex};
use std::collections::HashMap;

/// A set of per-database cuckoo feature indexes.
#[derive(Debug, Default)]
pub struct PartitionedFeatureIndex {
    partitions: HashMap<String, CuckooFeatureIndex>,
    config: CuckooConfig,
}

impl PartitionedFeatureIndex {
    /// Creates an empty partition set; new partitions use `config`.
    pub fn new(config: CuckooConfig) -> Self {
        Self { partitions: HashMap::new(), config }
    }

    /// The partition for `db`, created on first use.
    pub fn partition_mut(&mut self, db: &str) -> &mut CuckooFeatureIndex {
        if !self.partitions.contains_key(db) {
            self.partitions.insert(db.to_string(), CuckooFeatureIndex::new(self.config));
        }
        self.partitions.get_mut(db).expect("just inserted")
    }

    /// Read-only access to a partition, if it exists.
    pub fn partition(&self, db: &str) -> Option<&CuckooFeatureIndex> {
        self.partitions.get(db)
    }

    /// Deletes a database's partition outright (governor disable path).
    /// Returns whether a partition existed.
    pub fn drop_partition(&mut self, db: &str) -> bool {
        self.partitions.remove(db).is_some()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total accounted memory across all partitions.
    pub fn accounted_bytes(&self) -> usize {
        self.partitions.values().map(|p| p.accounted_bytes()).sum()
    }

    /// Total live entries across all partitions.
    pub fn len(&self) -> usize {
        self.partitions.values().map(|p| p.len()).sum()
    }

    /// Whether every partition is empty (or none exist).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_are_isolated() {
        let mut p = PartitionedFeatureIndex::new(CuckooConfig::default());
        p.partition_mut("wiki").lookup_insert(0xaaaa_0000_0000_0001, 1);
        p.partition_mut("mail").lookup_insert(0xaaaa_0000_0000_0001, 2);
        assert_eq!(p.partition("wiki").unwrap().lookup(0xaaaa_0000_0000_0001), vec![1]);
        assert_eq!(p.partition("mail").unwrap().lookup(0xaaaa_0000_0000_0001), vec![2]);
        assert_eq!(p.partition_count(), 2);
    }

    #[test]
    fn drop_partition_frees_memory() {
        let mut p = PartitionedFeatureIndex::new(CuckooConfig::default());
        for i in 0..100u64 {
            p.partition_mut("wiki").lookup_insert(i << 32 | 0xff00_0000_0000_0000, i as u32);
        }
        let before = p.accounted_bytes();
        assert!(before > 0);
        assert!(p.drop_partition("wiki"));
        assert!(!p.drop_partition("wiki"), "second drop is a no-op");
        assert_eq!(p.accounted_bytes(), 0);
        assert_eq!(p.partition("wiki").map(|x| x.len()), None);
    }

    #[test]
    fn totals_aggregate() {
        let mut p = PartitionedFeatureIndex::new(CuckooConfig::default());
        p.partition_mut("a").lookup_insert(1 << 50, 1);
        p.partition_mut("b").lookup_insert(2 << 50, 2);
        p.partition_mut("b").lookup_insert(3 << 50, 3);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }
}
