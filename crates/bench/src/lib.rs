//! # dbdedup-bench
//!
//! Experiment harnesses regenerating every table and figure of the
//! paper's evaluation (§5). Each `src/bin/figNN_*.rs` binary prints the
//! same rows/series the corresponding figure plots; `EXPERIMENTS.md` at
//! the repository root records paper-vs-measured values.
//!
//! Scale is controlled with the `DBDEDUP_SCALE` environment variable (the
//! number of insert operations per workload; default 2000). The paper ran
//! multi-GiB corpora on a dedicated cluster; shapes and relative factors
//! are stable from a few thousand records up.
//!
//! This library crate holds the shared driver: feeding workload traces
//! into engines while tracking throughput and client latency.

#![forbid(unsafe_code)]

use dbdedup_core::{DedupEngine, EngineConfig, MetricsSnapshot};
use dbdedup_obs::Registry;
use dbdedup_util::ids::RecordId;
use dbdedup_util::stats::LogHistogram;
use dbdedup_workloads::Op;
use std::path::PathBuf;
use std::time::Instant;

/// Insert count per workload, from `DBDEDUP_SCALE` (default 2000).
pub fn scale() -> usize {
    std::env::var("DBDEDUP_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(2000)
}

/// How many operations between periodic metrics emissions in
/// [`run_trace`] when `DBDEDUP_METRICS_JSON` is set.
const METRICS_EMIT_EVERY: u64 = 4096;

/// Appends one metrics-registry snapshot to `path` as a JSONL line, so a
/// long benchmark run leaves a time series of schema-stable snapshots.
pub fn emit_metrics_line(engine: &DedupEngine, path: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{}", engine.metrics().to_json())
}

/// Writes the engine's structured event log to `path` as JSONL.
pub fn dump_events(engine: &DedupEngine, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, engine.event_log().to_jsonl())
}

/// Machine-readable benchmark emission: every harness binary assembles
/// one `BenchReport` — run-level metadata plus one labelled [`Registry`]
/// row per configuration — and writes it as `BENCH_<name>.json` so the
/// tables the binaries print are also consumable by scripts. The schema
/// is documented in `docs/bench_json.md`.
pub struct BenchReport {
    name: String,
    meta: Registry,
    rows: Vec<(String, Registry)>,
}

impl BenchReport {
    /// Starts a report for the harness `name` (the file stem:
    /// `BENCH_<name>.json`).
    pub fn new(name: &str) -> Self {
        Self { name: name.to_string(), meta: Registry::new(), rows: Vec::new() }
    }

    /// Run-level metadata fields (scale, seeds, derived headline numbers).
    pub fn meta_mut(&mut self) -> &mut Registry {
        &mut self.meta
    }

    /// Appends one labelled configuration row.
    pub fn push_row(&mut self, label: &str, metrics: Registry) {
        self.rows.push((label.to_string(), metrics));
    }

    /// Renders the report as one JSON object:
    /// `{"bench":…,"schema":1,"meta":{…},"rows":[{"label":…,"metrics":{…}},…]}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"bench\":\"");
        json_escape(&self.name, &mut s);
        s.push_str("\",\"schema\":1,\"meta\":");
        s.push_str(&self.meta.to_json());
        s.push_str(",\"rows\":[");
        for (i, (label, metrics)) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"label\":\"");
            json_escape(label, &mut s);
            s.push_str("\",\"metrics\":");
            s.push_str(&metrics.to_json());
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// The directory bench JSON lands in: `DBDEDUP_BENCH_JSON_DIR`, or
    /// `results/` under the current directory.
    pub fn output_dir() -> PathBuf {
        std::env::var_os("DBDEDUP_BENCH_JSON_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results"))
    }

    /// Writes `BENCH_<name>.json` into [`output_dir`](Self::output_dir)
    /// (created if missing) and returns the path. Written via a temp file
    /// plus rename, so a concurrently reading script never sees a torn
    /// report.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = Self::output_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

fn json_escape(input: &str, out: &mut String) {
    for c in input.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Outcome of driving a trace through an engine.
pub struct RunResult {
    /// Final engine metrics.
    pub metrics: MetricsSnapshot,
    /// Wall-clock seconds.
    pub elapsed: f64,
    /// Operations executed.
    pub ops: u64,
    /// Client-visible latency per operation, nanoseconds.
    pub latency_ns: LogHistogram,
}

impl RunResult {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed == 0.0 {
            0.0
        } else {
            self.ops as f64 / self.elapsed
        }
    }

    /// The run as a [`BenchReport`] row: throughput, op count, elapsed
    /// seconds, and the client latency histogram quantiles.
    pub fn registry(&self) -> Registry {
        let mut r = Registry::new();
        r.set_f64("throughput_ops_per_s", self.throughput());
        r.set_u64("ops", self.ops);
        r.set_f64("elapsed_s", self.elapsed);
        r.set_histogram("latency_ns", &self.latency_ns);
        r
    }
}

/// Drives a full trace (inserts + reads) through `engine`, pumping the
/// write-back path with real elapsed time every few operations — the
/// background-thread behaviour of the paper's integration.
pub fn run_trace(engine: &mut DedupEngine, db: &str, ops: impl Iterator<Item = Op>) -> RunResult {
    // Optional telemetry export: DBDEDUP_METRICS_JSON appends a snapshot
    // line every METRICS_EMIT_EVERY ops (plus one final), and
    // DBDEDUP_EVENTS_JSONL receives the structured event log at the end.
    let metrics_path = std::env::var_os("DBDEDUP_METRICS_JSON").map(std::path::PathBuf::from);
    let events_path = std::env::var_os("DBDEDUP_EVENTS_JSONL").map(std::path::PathBuf::from);
    let start = Instant::now();
    let mut latency = LogHistogram::new();
    let mut count = 0u64;
    let mut last_pump = Instant::now();
    for op in ops {
        let t0 = Instant::now();
        match op {
            Op::Insert { id, data } => {
                engine.insert(db, id, &data).expect("insert");
            }
            Op::Read { id } => {
                engine.read(id).expect("read");
            }
        }
        latency.record(t0.elapsed().as_nanos() as u64);
        count += 1;
        if count.is_multiple_of(64) {
            let dt = last_pump.elapsed().as_secs_f64();
            last_pump = Instant::now();
            engine.pump(dt, 32).expect("pump");
        }
        if count.is_multiple_of(METRICS_EMIT_EVERY) {
            if let Some(p) = &metrics_path {
                emit_metrics_line(engine, p).expect("metrics emission");
            }
        }
    }
    engine.flush_all_writebacks().expect("final flush");
    if let Some(p) = &metrics_path {
        emit_metrics_line(engine, p).expect("metrics emission");
    }
    if let Some(p) = &events_path {
        dump_events(engine, p).expect("events dump");
    }
    RunResult {
        metrics: engine.metrics(),
        elapsed: start.elapsed().as_secs_f64(),
        ops: count,
        latency_ns: latency,
    }
}

/// Ingests only the inserts of a trace (compression experiments).
pub fn run_inserts(engine: &mut DedupEngine, db: &str, ops: impl Iterator<Item = Op>) -> RunResult {
    run_trace(engine, db, ops.filter(|o| o.is_write()))
}

/// Builds an engine for one of the three Fig. 10/12 configurations.
pub fn engine_for(config: EngineConfig) -> DedupEngine {
    DedupEngine::open_temp(config).expect("temp engine")
}

/// Collects all insert payload sizes of a trace (Fig. 7 style analyses)
/// without running an engine.
pub fn insert_sizes(ops: impl Iterator<Item = Op>) -> Vec<(RecordId, usize)> {
    ops.filter_map(|o| match o {
        Op::Insert { id, data } => Some((id, data.len())),
        _ => None,
    })
    .collect()
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join("  "));
}

/// Prints a header row plus separator.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(cells.len() * 16));
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdedup_workloads::Wikipedia;

    #[test]
    fn driver_runs_a_small_trace() {
        let mut cfg = EngineConfig::default();
        cfg.min_benefit_bytes = 16;
        let mut e = engine_for(cfg);
        let r = run_trace(&mut e, "wikipedia", Wikipedia::mixed(20, 0.5, 1));
        assert!(r.ops >= 20);
        assert!(r.throughput() > 0.0);
        assert!(r.metrics.storage_ratio() >= 1.0);
        assert!(r.latency_ns.count() == r.ops);
    }

    #[test]
    fn insert_sizes_extracts_writes_only() {
        let sizes = insert_sizes(Wikipedia::mixed(10, 0.5, 2));
        assert_eq!(sizes.len(), 10);
    }

    /// The `maint.*` gauges exported through the metrics registry must
    /// climb while tombstoned records are pinned and drain to zero once a
    /// maintainer quiesces — the signal an operator watches to know the
    /// background tier is keeping up.
    #[test]
    fn maint_gauges_drain_to_zero_in_metrics_export() {
        use dbdedup_maint::{MaintConfig, Maintainer};
        use dbdedup_util::dist::SplitMix64;
        use dbdedup_util::ids::RecordId;

        let mut cfg = EngineConfig::default();
        cfg.min_benefit_bytes = 16;
        let mut e = engine_for(cfg);
        // Random-letter content: periodic fills defeat the similarity
        // sketch, so versions must look like real mutated documents.
        let mut rng = SplitMix64::new(0xBE7C);
        let mut doc: Vec<u8> = (0..4096).map(|_| (rng.next_u64() % 26 + 97) as u8).collect();
        for i in 0..6u64 {
            let at = rng.next_index(doc.len() - 40);
            for b in doc.iter_mut().skip(at).take(32) {
                *b = (rng.next_u64() % 26 + 97) as u8;
            }
            e.insert("db", RecordId(i), &doc).expect("insert");
        }
        e.flush_all_writebacks().expect("flush");
        // Delete a mid-chain record: it stays pinned as a decode base.
        e.delete(RecordId(3)).expect("delete");

        let gauge = |e: &DedupEngine, key: &str| -> f64 {
            let json = dbdedup_obs::json::parse(&e.metrics().to_json()).expect("valid JSON");
            let obj = json.as_obj().expect("object");
            obj.iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_num())
                .unwrap_or_else(|| panic!("missing gauge {key}"))
        };
        assert!(gauge(&e, "maint.gc_backlog") > 0.0, "pinned delete must show in the gauge");
        assert!(gauge(&e, "maint.pinned_dead_bytes") > 0.0);

        let mut m = Maintainer::new(MaintConfig::default());
        m.run_until_quiesced(&mut e).expect("quiesce");
        for key in ["maint.gc_backlog", "maint.pinned_dead_bytes", "maint.reclaimable_dead_bytes"] {
            assert_eq!(gauge(&e, key), 0.0, "{key} must drain to zero after quiesce");
        }
        assert!(gauge(&e, "maint.removed") > 0.0, "the pinned record was physically removed");
    }

    /// A `BenchReport` must render parseable JSON carrying every meta
    /// field and row metric, and `write()` must land it atomically at
    /// `BENCH_<name>.json` under the configured directory.
    #[test]
    fn bench_report_writes_schema_stable_json() {
        let mut report = BenchReport::new("unit_smoke");
        report.meta_mut().set_u64("scale", 123);
        report.meta_mut().set_f64("burst_prob", 0.25);
        let mut row = Registry::new();
        row.set_f64("throughput_ops_per_s", 1000.5);
        row.set_u64("ops", 64);
        report.push_row("shard=1 \"quoted\"", row);

        let json = report.to_json();
        let parsed = dbdedup_obs::json::parse(&json).expect("report is valid JSON");
        let obj = parsed.as_obj().expect("report is an object");
        assert_eq!(parsed.get("bench").and_then(|v| v.as_str()), Some("unit_smoke"));
        assert_eq!(parsed.get("schema").and_then(|v| v.as_num()), Some(1.0));
        let meta = parsed.get("meta").expect("meta present");
        assert_eq!(meta.get("scale").and_then(|v| v.as_num()), Some(123.0));
        assert_eq!(meta.get("burst_prob").and_then(|v| v.as_num()), Some(0.25));
        match parsed.get("rows").expect("rows present") {
            dbdedup_obs::json::Json::Arr(rows) => {
                assert_eq!(rows.len(), 1);
                assert_eq!(
                    rows[0].get("label").and_then(|v| v.as_str()),
                    Some("shard=1 \"quoted\""),
                    "labels round-trip through escaping"
                );
                let metrics = rows[0].get("metrics").expect("metrics present");
                assert_eq!(metrics.get("ops").and_then(|v| v.as_num()), Some(64.0));
            }
            other => panic!("rows is not an array: {other:?}"),
        }
        assert_eq!(obj.len(), 4, "top-level keys: bench, schema, meta, rows");

        // write() reads DBDEDUP_BENCH_JSON_DIR at call time; mutating the
        // env would race parallel tests, so exercise the file contract
        // against the rendered JSON directly.
        let dir = std::env::temp_dir().join(format!("dbdedup-benchjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_unit_smoke.json");
        std::fs::write(&path, report.to_json()).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, json);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `RunResult::registry()` exports the headline numbers plus the full
    /// latency percentile breakdown.
    #[test]
    fn run_result_registry_exports_latency_quantiles() {
        let mut cfg = EngineConfig::default();
        cfg.min_benefit_bytes = 16;
        let mut e = engine_for(cfg);
        let r = run_trace(&mut e, "wikipedia", Wikipedia::mixed(20, 0.5, 7));
        let reg = r.registry();
        for key in [
            "throughput_ops_per_s",
            "ops",
            "elapsed_s",
            "latency_ns.count",
            "latency_ns.p50",
            "latency_ns.p99",
            "latency_ns.max",
        ] {
            assert!(reg.get(key).is_some(), "missing {key}");
        }
        assert_eq!(reg.get("ops"), Some(dbdedup_obs::MetricValue::U64(r.ops)));
    }

    #[test]
    fn metrics_emission_appends_parseable_jsonl() {
        let dir = std::env::temp_dir().join(format!("dbdedup-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut cfg = EngineConfig::default();
        cfg.min_benefit_bytes = 16;
        let mut e = engine_for(cfg);
        let r = run_trace(&mut e, "wikipedia", Wikipedia::mixed(30, 0.5, 3));
        emit_metrics_line(&e, &path).unwrap();
        emit_metrics_line(&e, &path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2, "each emission appends one line");
        for line in lines {
            let json = dbdedup_obs::json::parse(line).expect("snapshot is valid JSON");
            let obj = json.as_obj().expect("snapshot is an object");
            assert!(obj.iter().any(|(k, _)| k == "stage.chunk.count"));
            assert!(obj.iter().any(|(k, _)| k == "io_idle_fraction"));
        }
        let events = dir.join("events.jsonl");
        dump_events(&e, &events).unwrap();
        let _ = std::fs::read_to_string(&events).unwrap();
        assert!(r.ops >= 30);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
