//! Fig. 12 — runtime impact: throughput (a) and client latency CDF (b)
//! for Original (no compression), dbDedup, and blockz/Snappy, across all
//! four workload traces (with their paper read/write mixes).
//!
//! Paper: dbDedup imposes negligible overhead on throughput and the
//! latency distribution; the 99.9%-tile difference is under 1%.

use dbdedup_bench::{engine_for, run_trace, scale};
use dbdedup_core::EngineConfig;
use dbdedup_util::fmt::format_ops;
use dbdedup_workloads::{Enron, MessageBoards, Op, StackExchange, Wikipedia, Workload};

fn traces(n: usize, seed: u64) -> Vec<Box<dyn Workload<Item = Op>>> {
    // The paper's read/write mixes, with read volume scaled down so runs
    // finish quickly (ratios preserved in spirit; reads dominate).
    vec![
        Box::new(Wikipedia::mixed(n, 0.95, seed)),
        Box::new(Enron::mixed(n, seed ^ 0x1111)),
        Box::new(StackExchange::mixed(n, 0.95, seed ^ 0x2222)),
        Box::new(MessageBoards::mixed(n, 1.0, seed ^ 0x3333)),
    ]
}

fn main() {
    let n = scale();
    println!("Fig 12a: throughput (ops/s), mixed traces ({n} writes each)\n");
    println!(
        "note: this substrate is an in-process library, so the baseline lacks the\n         RPC/journal/page costs that dominate a real DBMS op (~0.1-10 ms on the\n         paper's disk-bound testbed). `added us/op` is the absolute dedup cost —\n         compare it against real per-op latencies to see the paper's `negligible`.\n"
    );
    dbdedup_bench::header(&["dataset", "original", "dbDedup", "blockz", "added us/op"]);

    type ConfigRow = (&'static str, fn() -> EngineConfig);
    let configs: [ConfigRow; 3] = [
        ("original", EngineConfig::no_dedup),
        ("dbdedup", || {
            let mut c = EngineConfig::default();
            c.min_benefit_bytes = 16;
            c
        }),
        ("blockz", EngineConfig::compression_only),
    ];

    let mut latencies = Vec::new();
    for wl_id in 0..4usize {
        let mut tputs = Vec::new();
        let mut name = String::new();
        for (cfg_name, mk) in &configs {
            let mut wl = traces(n, 42).into_iter().nth(wl_id).expect("workload");
            name = wl.name().to_string();
            let db = wl.db();
            let mut engine = engine_for(mk());
            let r = run_trace(&mut engine, db, &mut *wl);
            tputs.push(r.throughput());
            if *cfg_name != "blockz" {
                latencies.push((name.clone(), cfg_name.to_string(), r.latency_ns));
            }
        }
        let added_us = (1.0 / tputs[1] - 1.0 / tputs[0]) * 1e6;
        dbdedup_bench::row(&[
            name,
            format_ops(tputs[0]),
            format_ops(tputs[1]),
            format_ops(tputs[2]),
            format!("{added_us:+.1}"),
        ]);
    }

    println!("\nFig 12b: client latency (µs)\n");
    dbdedup_bench::header(&["dataset", "config", "p50", "p90", "p99", "p99.9"]);
    for (dataset, cfg, hist) in &latencies {
        dbdedup_bench::row(&[
            dataset.clone(),
            cfg.clone(),
            format!("{:.1}", hist.quantile(0.50) as f64 / 1000.0),
            format!("{:.1}", hist.quantile(0.90) as f64 / 1000.0),
            format!("{:.1}", hist.quantile(0.99) as f64 / 1000.0),
            format!("{:.1}", hist.quantile(0.999) as f64 / 1000.0),
        ]);
    }
    println!("\npaper: dbDedup ≈ original on both throughput and full latency CDF");
}
