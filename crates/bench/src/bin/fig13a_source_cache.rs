//! Fig. 13a — the source record cache: compression ratio (normalized) and
//! cache miss ratio versus the cache-aware selection reward score, on the
//! Wikipedia workload.
//!
//! Paper: no cache ⇒ 100% of source retrievals hit the DBMS; a 32 MiB
//! cache with reward 0 eliminates 74% of them; reward 2 (default) cuts
//! misses to ~16% with no visible compression loss; larger rewards only
//! trade compression for marginal miss-rate gains.

use dbdedup_bench::{run_inserts, scale};
use dbdedup_core::{DedupEngine, EngineConfig};
use dbdedup_workloads::Wikipedia;

/// The paper ran a 32 MiB cache against a multi-GiB corpus (~1%). Keep the
/// same cache:corpus pressure at bench scale, or the cache trivially holds
/// the whole working set and every configuration looks perfect.
const CACHE_BYTES: usize = 1 << 20;

fn main() {
    let n = scale();
    println!("Fig 13a: source record cache & reward score, Wikipedia ({n} inserts)\n");
    dbdedup_bench::header(&["config", "norm. ratio", "miss ratio", "disk reads"]);

    // Baseline for normalization: default reward (2).
    let base_ratio = {
        let mut cfg = EngineConfig::default();
        cfg.min_benefit_bytes = 16;
        cfg.source_cache_bytes = CACHE_BYTES;
        let mut e = DedupEngine::open_temp(cfg).expect("engine");
        run_inserts(&mut e, "wikipedia", Wikipedia::insert_only(n, 42)).metrics.dedup_only_ratio()
    };

    // "No cache": shrink the cache to nothing.
    {
        let mut cfg = EngineConfig::default();
        cfg.min_benefit_bytes = 16;
        cfg.source_cache_bytes = 0;
        cfg.cache_reward = 0;
        let mut e = DedupEngine::open_temp(cfg).expect("engine");
        let r = run_inserts(&mut e, "wikipedia", Wikipedia::insert_only(n, 42));
        let sc = r.metrics.source_cache;
        dbdedup_bench::row(&[
            "no cache".to_string(),
            format!("{:.3}", r.metrics.dedup_only_ratio() / base_ratio),
            format!("{:.2}", sc.miss_ratio()),
            format!("{}", r.metrics.deduped_inserts),
        ]);
    }

    for reward in [0u32, 2, 4, 8] {
        let mut cfg = EngineConfig::default();
        cfg.min_benefit_bytes = 16;
        cfg.source_cache_bytes = CACHE_BYTES;
        cfg.cache_reward = reward;
        let mut e = DedupEngine::open_temp(cfg).expect("engine");
        let r = run_inserts(&mut e, "wikipedia", Wikipedia::insert_only(n, 42));
        let sc = r.metrics.source_cache;
        dbdedup_bench::row(&[
            format!("reward {reward}"),
            format!("{:.3}", r.metrics.dedup_only_ratio() / base_ratio),
            format!("{:.2}", sc.miss_ratio()),
            format!("{}", sc.misses),
        ]);
    }
    println!("\npaper: reward 2 cuts miss ratio to ~16% with negligible compression loss");
}
