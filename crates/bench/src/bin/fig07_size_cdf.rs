//! Fig. 7 — CDF of record sizes and the CDF weighted by each record's
//! contribution to space saving, for all four workloads. The paper's
//! observation: the 60% largest records account for ~90–95% of savings,
//! motivating the adaptive size-based filter (§3.4.2).
//!
//! Space saving per record is measured by running dbDedup (no size
//! filter) and attributing each insert's saving (`original − forward
//! delta`) to its size bucket.

use dbdedup_bench::scale;
use dbdedup_core::{DedupEngine, EngineConfig, InsertOutcome};
use dbdedup_util::stats::Cdf;
use dbdedup_workloads::{standard_suite, Op};

fn main() {
    let n = scale();
    println!("Fig 7: record-size CDF vs space-saving CDF ({n} inserts per workload)\n");

    for mut wl in standard_suite(n, 42) {
        let mut cfg = EngineConfig::default().without_size_filter();
        cfg.min_benefit_bytes = 16;
        let mut engine = DedupEngine::open_temp(cfg).expect("engine");
        let mut count_cdf = Cdf::new();
        let mut saving_cdf = Cdf::new();
        let db = wl.db();
        for op in &mut wl {
            let Op::Insert { id, data } = op else {
                continue;
            };
            let size = data.len() as u64;
            let outcome = engine.insert(db, id, &data).expect("insert");
            let saving = match outcome {
                InsertOutcome::Deduped { forward_bytes, .. } => {
                    size.saturating_sub(forward_bytes as u64)
                }
                _ => 0,
            };
            count_cdf.add(size);
            saving_cdf.add_weighted(size, saving as f64);
        }
        let p40 = count_cdf.quantile(0.40);
        let saving_below_p40 = saving_cdf.fraction_at(p40);
        println!("{}:", wl.name());
        dbdedup_bench::header(&["percentile", "record size", "cum. #recs", "cum. saving"]);
        for q in [0.2, 0.4, 0.6, 0.8, 0.95] {
            let v = count_cdf.quantile(q);
            dbdedup_bench::row(&[
                format!("p{:.0}", q * 100.0),
                format!("{v} B"),
                format!("{:.1}%", 100.0 * q),
                format!("{:.1}%", 100.0 * saving_cdf.fraction_at(v)),
            ]);
        }
        println!(
            "  records below the 40th size percentile contribute {:.1}% of savings\n",
            100.0 * saving_below_p40
        );
    }
    println!("paper: the 60% largest records account for ~90-95% of data reduction");
}
