//! Parallel ingest scaling: throughput and client-visible insert latency
//! for `ParallelIngest` at 1/2/4/8 workers vs the serial engine, at one
//! and four shards.
//!
//! Latency definition: for the serial engine, an insert's latency is the
//! full `insert()` call; for the pipeline it is the `submit()` call — the
//! time the *client* is blocked (queue admission incl. backpressure
//! stalls), since commits complete asynchronously in submission order.
//! The commit-path p99 (pipeline-internal service time) is reported
//! separately.
//!
//! Speedup is hardware-dependent: chunk/sketch fan-out and per-shard
//! commit lanes need real cores. The harness prints the machine's
//! available parallelism; on a single-core container the parallel
//! configurations measure overhead, not speedup (correctness is covered
//! by `tests/differential.rs`, which is timing-independent).

use dbdedup_bench::{header, row, scale, BenchReport};
use dbdedup_core::{
    DedupEngine, EngineConfig, IngestConfig, IngestSnapshot, ParallelIngest, ShardedEngine,
};
use dbdedup_obs::Registry;
use dbdedup_util::dist::{LogNormal, SplitMix64};
use dbdedup_util::ids::RecordId;
use dbdedup_util::stats::LogHistogram;
use std::time::Instant;

fn config() -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.min_benefit_bytes = 16;
    cfg
}

/// Version-chain insert stream over `dbs` databases (8 KiB documents,
/// lognormal edit bursts) — the chunk/sketch-heavy shape parallel ingest
/// targets. Deterministic in `seed`.
fn workload(seed: u64, n: usize, dbs: usize) -> Vec<(String, RecordId, Vec<u8>)> {
    let mut rng = SplitMix64::new(seed);
    let mut docs: Vec<Vec<u8>> = (0..dbs)
        .map(|d| {
            let mut doc = Vec::new();
            while doc.len() < 8 * 1024 {
                let w = rng.next_u64() % 700;
                doc.extend_from_slice(format!("db{d} rec{w} field{w} body text. ").as_bytes());
            }
            doc
        })
        .collect();
    let burst_len = LogNormal::from_median(64.0, 1.0);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let d = rng.next_index(dbs);
        let doc = &mut docs[d];
        for _ in 0..1 + rng.next_index(4) {
            let len = burst_len.sample_clamped(&mut rng, 8, 1024) as usize;
            let at = rng.next_index(doc.len().saturating_sub(len + 1).max(1));
            for b in doc.iter_mut().skip(at).take(len) {
                *b = (rng.next_u64() % 26 + 97) as u8;
            }
        }
        out.push((format!("db{d}"), RecordId(i as u64), doc.clone()));
    }
    out
}

struct Measured {
    ops_per_s: f64,
    mib_per_s: f64,
    client_p99_us: f64,
    report: Option<IngestSnapshot>,
}

fn run_serial(ops: &[(String, RecordId, Vec<u8>)]) -> Measured {
    let mut engine = DedupEngine::open_temp(config()).expect("serial engine");
    let mut lat = LogHistogram::new();
    let bytes: usize = ops.iter().map(|(_, _, d)| d.len()).sum();
    let t0 = Instant::now();
    for (db, id, data) in ops {
        let t = Instant::now();
        engine.insert(db, *id, data).expect("insert");
        lat.record(t.elapsed().as_nanos() as u64);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    Measured {
        ops_per_s: ops.len() as f64 / elapsed,
        mib_per_s: bytes as f64 / (1 << 20) as f64 / elapsed,
        client_p99_us: lat.quantile(0.99) as f64 / 1e3,
        report: None,
    }
}

fn run_parallel(ops: &[(String, RecordId, Vec<u8>)], shards: usize, workers: usize) -> Measured {
    let sharded = ShardedEngine::open_temp(config(), shards).expect("sharded engine");
    let mut ingest = ParallelIngest::new(sharded, IngestConfig::with_workers(workers));
    let mut lat = LogHistogram::new();
    let bytes: usize = ops.iter().map(|(_, _, d)| d.len()).sum();
    let t0 = Instant::now();
    for (db, id, data) in ops {
        let t = Instant::now();
        ingest.submit(db, *id, data);
        lat.record(t.elapsed().as_nanos() as u64);
    }
    ingest.drain().expect("drain");
    let elapsed = t0.elapsed().as_secs_f64();
    let (_, report) = ingest.finish().expect("finish");
    Measured {
        ops_per_s: ops.len() as f64 / elapsed,
        mib_per_s: bytes as f64 / (1 << 20) as f64 / elapsed,
        client_p99_us: lat.quantile(0.99) as f64 / 1e3,
        report: Some(report),
    }
}

fn main() {
    let n = scale();
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    println!("Parallel ingest scaling ({n} inserts, ~8 KiB docs, 8 databases)");
    println!(
        "note: machine reports {cores} available core(s). Speedup needs real cores;\n\
         with fewer cores than workers these rows measure coordination overhead.\n\
         Determinism (byte-identity to serial) is enforced by tests/differential.rs\n\
         independently of timing.\n"
    );

    let ops = workload(42, n, 8);
    let serial = run_serial(&ops);
    let mut bench = BenchReport::new("ingest_parallel");
    bench.meta_mut().set_u64("inserts", n as u64);
    bench.meta_mut().set_u64("cores", cores as u64);
    let measured_row = |m: &Measured, speedup: f64| {
        let mut reg = Registry::new();
        reg.set_f64("ops_per_s", m.ops_per_s);
        reg.set_f64("mib_per_s", m.mib_per_s);
        reg.set_f64("speedup", speedup);
        reg.set_f64("client_p99_us", m.client_p99_us);
        if let Some(report) = &m.report {
            reg.set_histogram("commit_ns", &report.commit_ns);
            reg.set_f64("worker_utilization", report.worker_utilization());
        }
        reg
    };
    bench.push_row("serial", measured_row(&serial, 1.0));
    header(&[
        "mode",
        "shards",
        "workers",
        "ops/s",
        "MiB/s",
        "speedup",
        "client p99 us",
        "commit p99 us",
        "util %",
    ]);
    row(&[
        "serial".into(),
        "-".into(),
        "-".into(),
        format!("{:.0}", serial.ops_per_s),
        format!("{:.1}", serial.mib_per_s),
        "1.00x".into(),
        format!("{:.0}", serial.client_p99_us),
        "-".into(),
        "-".into(),
    ]);
    for shards in [1usize, 4] {
        for workers in [1usize, 2, 4, 8] {
            let m = run_parallel(&ops, shards, workers);
            bench.push_row(
                &format!("shards={shards} workers={workers}"),
                measured_row(&m, m.ops_per_s / serial.ops_per_s),
            );
            let report = m.report.expect("parallel report");
            row(&[
                "parallel".into(),
                shards.to_string(),
                workers.to_string(),
                format!("{:.0}", m.ops_per_s),
                format!("{:.1}", m.mib_per_s),
                format!("{:.2}x", m.ops_per_s / serial.ops_per_s),
                format!("{:.0}", m.client_p99_us),
                format!("{:.0}", report.commit_ns.quantile(0.99) as f64 / 1e3),
                format!("{:.0}", report.worker_utilization() * 100.0),
            ]);
        }
    }

    // One detailed snapshot at the headline configuration (4 workers),
    // showing the ingest.* registry keys the pipeline exports.
    let m = run_parallel(&ops, 4, 4);
    let report = m.report.expect("report");
    println!("\ningest.* registry snapshot (shards=4, workers=4):");
    println!("{}", report.to_json());

    let path = bench.write().expect("bench json");
    println!("machine-readable report: {}", path.display());
}
