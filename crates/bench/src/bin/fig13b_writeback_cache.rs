//! Fig. 13b — bursty insert throughput with and without the lossy
//! write-back cache.
//!
//! The paper alternates 10 s of full-speed Wikipedia inserts with 10 s of
//! idleness. Without the cache, every insert pays its source's backward
//! writeback inline, stealing device budget from client writes during
//! bursts; with the cache, writebacks drain during the idle windows and
//! burst throughput is unaffected.
//!
//! The device is modeled with the engine's I/O accounting: each simulated
//! second grants a fixed write budget, and the client inserts until the
//! budget is spent.

use dbdedup_bench::scale;
use dbdedup_core::{DedupEngine, EngineConfig};
use dbdedup_workloads::{Op, Wikipedia};

const WRITES_PER_SEC: u64 = 200;
const PHASE: usize = 5; // seconds per burst/idle phase
const TOTAL: usize = 20; // simulated seconds

fn run(sync_writebacks: bool, inserts_cap: usize) -> Vec<(usize, u64)> {
    let mut cfg = EngineConfig::default();
    cfg.min_benefit_bytes = 16;
    cfg.synchronous_writebacks = sync_writebacks;
    let mut engine = DedupEngine::open_temp(cfg).expect("engine");
    let mut ops = Wikipedia::insert_only(inserts_cap, 42).filter_map(|op| match op {
        Op::Insert { id, data } => Some((id, data)),
        _ => None,
    });
    let mut series = Vec::new();
    for t in 0..TOTAL {
        let burst = (t / PHASE).is_multiple_of(2);
        if burst {
            let start = engine.store().io_stats().writes;
            let mut done = 0u64;
            while engine.store().io_stats().writes - start < WRITES_PER_SEC {
                let Some((id, data)) = ops.next() else { break };
                engine.insert("wikipedia", id, &data).expect("insert");
                done += 1;
            }
            series.push((t, done));
        } else {
            // Idle second: the background path flushes deferred writebacks.
            engine.pump(1.0, usize::MAX).expect("pump");
            series.push((t, 0));
        }
    }
    series
}

fn main() {
    let n = scale().max(4000);
    println!("Fig 13b: bursty insert throughput, Wikipedia ({WRITES_PER_SEC} writes/s device)\n");
    let with_cache = run(false, n);
    let without = run(true, n);

    dbdedup_bench::header(&["second", "w/ wb-cache", "w/o wb-cache", "phase"]);
    let mut sum_with = 0u64;
    let mut sum_without = 0u64;
    for t in 0..TOTAL {
        let burst = (t / PHASE).is_multiple_of(2);
        sum_with += with_cache[t].1;
        sum_without += without[t].1;
        dbdedup_bench::row(&[
            format!("{t}"),
            format!("{} ops", with_cache[t].1),
            format!("{} ops", without[t].1),
            if burst { "burst" } else { "idle" }.to_string(),
        ]);
    }
    println!(
        "\nburst-phase total: {} ops with cache vs {} without ({:+.0}%)",
        sum_with,
        sum_without,
        100.0 * (sum_with as f64 / sum_without as f64 - 1.0)
    );
    println!("paper: the write-back cache removes the burst-phase slowdown entirely");
}
