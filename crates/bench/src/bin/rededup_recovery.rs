//! Degraded-burst recovery — storage-ratio convergence of out-of-line
//! re-dedup versus a never-degraded control.
//!
//! Under overload the engine sheds dedup and admits records raw (§4.3
//! pass-through); the maintenance tier later re-deduplicates them off the
//! client path. This harness runs one seeded revision-stream workload
//! twice: a control run that never degrades, and a run whose trailing
//! burst lands entirely while the overload gate is up. It prints the
//! storage ratio at three points — control, degraded-before-drain, and
//! degraded-after-quiesce — plus the wall-clock cost of the drain. The
//! headline is the last column converging to the first: recovery erases
//! the burst's storage penalty entirely.

use dbdedup_bench::BenchReport;
use dbdedup_core::{DedupEngine, EngineConfig, InsertOutcome};
use dbdedup_maint::{MaintConfig, Maintainer};
use dbdedup_obs::Registry;
use dbdedup_util::dist::SplitMix64;
use dbdedup_util::ids::RecordId;
use std::time::Instant;

fn engine() -> DedupEngine {
    let mut cfg = EngineConfig::default();
    cfg.min_benefit_bytes = 16;
    DedupEngine::open_temp(cfg).expect("temp engine")
}

fn mutate(doc: &mut [u8], rng: &mut SplitMix64) {
    for _ in 0..5 {
        let at = rng.next_index(doc.len() - 50);
        for b in doc.iter_mut().skip(at).take(40) {
            *b = (rng.next_u64() % 26 + 97) as u8;
        }
    }
}

/// A single revision stream: each record is the previous one with a few
/// small mutations, so inline dedup compresses the tail heavily.
fn workload(seed: u64, total: usize) -> Vec<(RecordId, Vec<u8>)> {
    let mut rng = SplitMix64::new(seed);
    let mut doc: Vec<u8> = (0..8192).map(|_| (rng.next_u64() % 26 + 97) as u8).collect();
    (0..total)
        .map(|i| {
            if i > 0 {
                mutate(&mut doc, &mut rng);
            }
            (RecordId(i as u64), doc.clone())
        })
        .collect()
}

fn ratio(e: &mut DedupEngine) -> f64 {
    e.metrics().storage_ratio()
}

struct RunOutcome {
    ratio_before_drain: f64,
    ratio_after: f64,
    rededuped: u64,
    drain_secs: f64,
}

/// Runs the workload with the last `burst` inserts under the overload
/// gate, then drains the degraded backlog to quiescence.
fn run(ops: &[(RecordId, Vec<u8>)], burst: usize) -> RunOutcome {
    let mut e = engine();
    let burst_from = ops.len() - burst;
    for (i, (id, payload)) in ops.iter().enumerate() {
        if burst > 0 && i == burst_from {
            e.set_replication_pressure(true);
        }
        let out = e.insert("bench", *id, payload).expect("insert");
        if burst > 0 && i >= burst_from {
            assert_eq!(out, InsertOutcome::BypassedOverload, "gate must shed op {i}");
        }
    }
    e.set_replication_pressure(false);
    e.flush_all_writebacks().expect("flush");
    let ratio_before_drain = ratio(&mut e);
    let mut m = Maintainer::new(MaintConfig::default());
    let t0 = Instant::now();
    let q = m.run_until_quiesced(&mut e).expect("quiesce");
    let drain_secs = t0.elapsed().as_secs_f64();
    e.flush_all_writebacks().expect("flush");
    assert_eq!(e.degraded_backlog_len(), 0, "backlog must drain");
    RunOutcome {
        ratio_before_drain,
        ratio_after: ratio(&mut e),
        rededuped: q.rededuped,
        drain_secs,
    }
}

fn main() {
    let total = (dbdedup_bench::scale() / 20).max(24);
    let burst = total / 4;
    println!(
        "degraded-burst recovery: {total} revisions, trailing {burst} degraded \
         (storage ratio = original/stored)\n"
    );
    dbdedup_bench::header(&["config", "rededuped", "ratio@burst-end", "ratio@quiesce", "drain(s)"]);

    let ops = workload(0xDE64_ADED, total);
    let control = run(&ops, 0);
    let degraded = run(&ops, burst);
    for (name, r) in [("never-degraded", &control), ("degraded-burst", &degraded)] {
        dbdedup_bench::row(&[
            name.to_string(),
            r.rededuped.to_string(),
            format!("{:.2}", r.ratio_before_drain),
            format!("{:.2}", r.ratio_after),
            format!("{:.3}", r.drain_secs),
        ]);
    }
    println!(
        "\nburst shed {} inserts raw; recovery ratio {:.2} vs control {:.2} \
         (parity: out-of-line re-dedup erases the degradation penalty)",
        degraded.rededuped, degraded.ratio_after, control.ratio_after
    );
    assert!(
        (degraded.ratio_after - control.ratio_after).abs() < 1e-9,
        "recovered run must match the never-degraded storage ratio exactly"
    );

    let mut report = BenchReport::new("rededup_recovery");
    report.meta_mut().set_u64("revisions", total as u64);
    report.meta_mut().set_u64("burst", burst as u64);
    for (name, r) in [("never-degraded", &control), ("degraded-burst", &degraded)] {
        let mut reg = Registry::new();
        reg.set_u64("rededuped", r.rededuped);
        reg.set_f64("ratio_before_drain", r.ratio_before_drain);
        reg.set_f64("ratio_after", r.ratio_after);
        reg.set_f64("drain_s", r.drain_secs);
        report.push_row(name, reg);
    }
    let path = report.write().expect("bench json");
    println!("machine-readable report: {}", path.display());
}
