//! Fig. 2 — why similarity + delta beats exact chunk matching on database
//! records: with small dispersed modifications, chunk-based dedup at KB
//! granularity finds almost no duplicate chunks, while byte-level delta
//! compression captures nearly all shared content.

use dbdedup_core::baseline::TradDedup;
use dbdedup_delta::DbDeltaEncoder;
use dbdedup_util::dist::SplitMix64;
use dbdedup_util::fmt::format_bytes;
use dbdedup_util::ids::RecordId;

fn main() {
    // A 64 KiB record with 12 dispersed ~20-byte modifications — the
    // scenario Fig. 2 illustrates.
    let mut rng = SplitMix64::new(7);
    let original: Vec<u8> = (0..64 << 10).map(|_| (rng.next_u64() % 26 + 97) as u8).collect();
    let mut incoming = original.clone();
    for _ in 0..12 {
        let at = rng.next_index(incoming.len() - 24);
        for b in incoming.iter_mut().skip(at).take(20) {
            *b = (rng.next_u64() % 26 + 65) as u8;
        }
    }

    println!("Fig 2: one 64 KiB record, 12 dispersed 20-byte edits\n");
    dbdedup_bench::header(&["method", "stored bytes", "eliminated", "of record"]);

    for chunk in [4096usize, 1024, 64] {
        let mut t = TradDedup::new(chunk);
        t.ingest(RecordId(1), &original);
        let stored = t.ingest(RecordId(2), &incoming);
        let pct = 100.0 * (1.0 - stored as f64 / incoming.len() as f64);
        dbdedup_bench::row(&[
            format!("chunk-dedup/{chunk}B"),
            format_bytes(stored),
            format_bytes(incoming.len() as u64 - stored.min(incoming.len() as u64)),
            format!("{pct:.1}% saved"),
        ]);
    }

    let enc = DbDeltaEncoder::default();
    let delta = enc.encode(&original, &incoming);
    let stored = delta.encoded_len() as u64;
    let pct = 100.0 * (1.0 - stored as f64 / incoming.len() as f64);
    dbdedup_bench::row(&[
        "delta (dbDedup)".to_string(),
        format_bytes(stored),
        format_bytes(incoming.len() as u64 - stored),
        format!("{pct:.1}% saved"),
    ]);
    println!("\npaper: delta compression identifies far finer-grained duplication (Fig 2)");
}
