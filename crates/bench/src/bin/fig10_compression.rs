//! Fig. 10 (a–d) — compression ratio and index memory for all four
//! datasets under five configurations: dbDedup (1 KiB, 64 B), trad-dedup
//! (4 KiB, 64 B), and block compression.
//!
//! Paper: Wikipedia 26×/37× for dbDedup vs 2.3×/15× for trad-dedup (at
//! 80 MB → 780 MB index); Enron ~3×; forums 1.3–1.8×; blockz/Snappy adds
//! 1.6–2.3× on top everywhere.

use dbdedup_bench::{engine_for, run_inserts, scale};
use dbdedup_core::baseline::TradDedup;
use dbdedup_core::EngineConfig;
use dbdedup_util::fmt::{format_bytes, format_ratio};
use dbdedup_workloads::{standard_suite, Op};

fn main() {
    let n = scale();
    println!("Fig 10: compression ratio & index memory, all datasets ({n} inserts each)\n");

    for wl_id in 0..4usize {
        let name = {
            let suite = standard_suite(1, 42);
            suite[wl_id].name()
        };
        println!("({}) {}", ['a', 'b', 'c', 'd'][wl_id], name);
        dbdedup_bench::header(&["config", "dedup", "dedup+blockz", "index mem"]);

        for chunk in [1024usize, 64] {
            // Dedup only.
            let mut cfg = EngineConfig::with_chunk_size(chunk);
            cfg.min_benefit_bytes = 16;
            let mut engine = engine_for(cfg);
            let mut wl = standard_suite(n, 42).into_iter().nth(wl_id).expect("workload");
            let db = wl.db();
            let r = run_inserts(&mut engine, db, &mut *wl);
            // Dedup + block compression.
            let mut cfg2 = EngineConfig::with_chunk_size(chunk);
            cfg2.min_benefit_bytes = 16;
            cfg2.block_compression = true;
            let mut engine2 = engine_for(cfg2);
            let mut wl2 = standard_suite(n, 42).into_iter().nth(wl_id).expect("workload");
            let r2 = run_inserts(&mut engine2, db, &mut *wl2);
            dbdedup_bench::row(&[
                format!("dbDedup/{}B", chunk),
                format_ratio(r.metrics.storage_ratio()),
                format_ratio(r2.metrics.storage_ratio()),
                format_bytes(r.metrics.index_bytes as u64),
            ]);
        }

        for chunk in [4096usize, 64] {
            let mut trad = TradDedup::new(chunk);
            let mut wl = standard_suite(n, 42).into_iter().nth(wl_id).expect("workload");
            for op in &mut *wl {
                if let Op::Insert { id, data } = op {
                    trad.ingest(id, &data);
                }
            }
            let s = trad.stats();
            dbdedup_bench::row(&[
                format!("trad/{}B", chunk),
                format_ratio(s.ratio()),
                "-".to_string(),
                format_bytes(trad.index_bytes() as u64),
            ]);
        }

        let mut engine = engine_for(EngineConfig::compression_only());
        let mut wl = standard_suite(n, 42).into_iter().nth(wl_id).expect("workload");
        let db = wl.db();
        let r = run_inserts(&mut engine, db, &mut *wl);
        dbdedup_bench::row(&[
            "blockz only".to_string(),
            format_ratio(1.0),
            format_ratio(r.metrics.storage_ratio()),
            format_bytes(0),
        ]);
        println!();
    }
    println!("paper fig 10: wiki 26-37x dbDedup vs 2.3-15x trad; enron ~3x; forums 1.3-1.8x");
}
