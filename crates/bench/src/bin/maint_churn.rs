//! Maintenance churn — foreground insert latency with and without the
//! background maintenance tier, under a delete-heavy workload.
//!
//! The paper's §4.1 garbage collection must stay off the client path:
//! deleted-but-pinned records are re-encoded lazily, never inline with a
//! client write. This harness drives identical seeded churn (inserts,
//! updates, deletes) through two engines — one with a budgeted
//! [`Maintainer`] running in the idle slots between operation batches,
//! one without — and compares the foreground insert latency CDFs. The
//! maintained run then quiesces and reports what the tier reclaimed.
//!
//! With `DBDEDUP_METRICS_JSON=path` set, the maintained run appends
//! periodic metrics-registry snapshots plus one final post-quiesce line,
//! so the `maint.*` gauges can be watched climbing under churn and
//! draining back to zero.

use dbdedup_bench::{emit_metrics_line, BenchReport};
use dbdedup_core::{DedupEngine, EngineConfig};
use dbdedup_maint::{MaintConfig, Maintainer};
use dbdedup_obs::Registry;
use dbdedup_util::dist::SplitMix64;
use dbdedup_util::ids::RecordId;
use dbdedup_util::stats::LogHistogram;
use std::time::Instant;

struct ChurnResult {
    insert_ns: LogHistogram,
    inserts: u64,
    deletes: u64,
    backlog_peak: usize,
    gc_reencoded: u64,
    gc_removed: u64,
    compact_reclaimed: u64,
}

fn engine() -> DedupEngine {
    let mut cfg = EngineConfig::default();
    cfg.min_benefit_bytes = 16;
    DedupEngine::open_temp(cfg).expect("temp engine")
}

fn mutate(doc: &mut [u8], rng: &mut SplitMix64) {
    for _ in 0..4 {
        let at = rng.next_index(doc.len().saturating_sub(40).max(1));
        for b in doc.iter_mut().skip(at).take(32) {
            *b = (rng.next_u64() % 26 + 97) as u8;
        }
    }
}

/// One churn run: ~30% deletes, ~30% updates, ~40% near-duplicate
/// inserts, with the write-back pump (and optionally one maintenance
/// tick) every 64 operations.
fn churn(n: usize, seed: u64, mut maint: Option<Maintainer>) -> ChurnResult {
    let metrics_path = maint
        .is_some()
        .then(|| std::env::var_os("DBDEDUP_METRICS_JSON").map(std::path::PathBuf::from))
        .flatten();
    let mut e = engine();
    let mut rng = SplitMix64::new(seed);
    // Random letters, not a periodic fill — periodic content defeats the
    // similarity sketch and every insert would land unique.
    let mut doc: Vec<u8> = (0..4096).map(|_| (rng.next_u64() % 26 + 97) as u8).collect();
    let mut live: Vec<u64> = Vec::new();
    let mut next_id = 0u64;
    let mut r = ChurnResult {
        insert_ns: LogHistogram::new(),
        inserts: 0,
        deletes: 0,
        backlog_peak: 0,
        gc_reencoded: 0,
        gc_removed: 0,
        compact_reclaimed: 0,
    };
    for i in 0..n {
        match rng.next_u64() % 10 {
            0..=2 if live.len() > 8 => {
                let at = rng.next_index(live.len());
                let id = live.swap_remove(at);
                e.delete(RecordId(id)).expect("delete");
                r.deletes += 1;
            }
            3..=5 if !live.is_empty() => {
                let id = live[rng.next_index(live.len())];
                mutate(&mut doc, &mut rng);
                e.update(RecordId(id), &doc).expect("update");
            }
            _ => {
                mutate(&mut doc, &mut rng);
                let id = RecordId(next_id);
                next_id += 1;
                let t0 = Instant::now();
                e.insert("churn", id, &doc).expect("insert");
                r.insert_ns.record(t0.elapsed().as_nanos() as u64);
                r.inserts += 1;
                live.push(id.0);
            }
        }
        if (i + 1) % 64 == 0 {
            r.backlog_peak = r.backlog_peak.max(e.gc_backlog_ids().len());
            // Grant the modeled HDD a virtual idle window per batch (64
            // submits against a 200 IOPS drain): real elapsed time in this
            // tight loop would never drain the queue, and neither
            // writebacks nor maintenance would ever run.
            match &mut maint {
                Some(m) => {
                    m.pump(&mut e, 0.5, 32).expect("maint pump");
                }
                None => {
                    e.pump(0.5, 32).expect("pump");
                }
            }
        }
        if (i + 1) % 1024 == 0 {
            if let Some(p) = &metrics_path {
                emit_metrics_line(&e, p).expect("metrics emission");
            }
        }
    }
    e.flush_all_writebacks().expect("final flush");
    if let Some(m) = &mut maint {
        let q = m.run_until_quiesced(&mut e).expect("quiesce");
        assert!(m.quiesced(&e), "maintainer must fully drain: {q:?}");
    }
    if let Some(p) = &metrics_path {
        emit_metrics_line(&e, p).expect("metrics emission");
    }
    let snap = e.metrics();
    r.gc_reencoded = snap.maint_reencoded;
    r.gc_removed = snap.maint_removed;
    r.compact_reclaimed = snap.compact.bytes_reclaimed;
    r
}

fn main() {
    let n = dbdedup_bench::scale() * 4;
    println!("maintenance churn: {n} ops (~30% deletes), insert latency (µs)\n");
    dbdedup_bench::header(&["config", "inserts", "p50", "p90", "p99", "max"]);

    let mut cfg = MaintConfig::default();
    cfg.compact_trigger_ratio = 0.10;
    cfg.compact_budget_bytes = 64 << 10;
    let runs = [
        ("no-maint", churn(n, 0xC0DE, None)),
        ("maint", churn(n, 0xC0DE, Some(Maintainer::new(cfg)))),
    ];
    for (name, r) in &runs {
        dbdedup_bench::row(&[
            name.to_string(),
            r.inserts.to_string(),
            format!("{:.1}", r.insert_ns.quantile(0.50) as f64 / 1000.0),
            format!("{:.1}", r.insert_ns.quantile(0.90) as f64 / 1000.0),
            format!("{:.1}", r.insert_ns.quantile(0.99) as f64 / 1000.0),
            format!("{:.1}", r.insert_ns.max() as f64 / 1000.0),
        ]);
    }

    let m = &runs[1].1;
    println!(
        "\nmaintained run: {} deletes, backlog peak {}, {} dependents re-encoded, \
         {} pinned records removed, {} bytes compacted away",
        m.deletes, m.backlog_peak, m.gc_reencoded, m.gc_removed, m.compact_reclaimed
    );
    let p99_delta = m.insert_ns.quantile(0.99) as f64 / runs[0].1.insert_ns.quantile(0.99) as f64;
    println!("insert p99 ratio maint/no-maint: {p99_delta:.2}x (paper: off the client path)");

    let mut report = BenchReport::new("maint_churn");
    report.meta_mut().set_u64("ops", n as u64);
    report.meta_mut().set_f64("insert_p99_ratio", p99_delta);
    for (name, r) in &runs {
        let mut reg = Registry::new();
        reg.set_u64("inserts", r.inserts);
        reg.set_u64("deletes", r.deletes);
        reg.set_u64("backlog_peak", r.backlog_peak as u64);
        reg.set_u64("gc_reencoded", r.gc_reencoded);
        reg.set_u64("gc_removed", r.gc_removed);
        reg.set_u64("compact_reclaimed_bytes", r.compact_reclaimed);
        reg.set_histogram("insert_ns", &r.insert_ns);
        report.push_row(name, reg);
    }
    let path = report.write().expect("bench json");
    println!("machine-readable report: {}", path.display());
    if std::env::var_os("DBDEDUP_METRICS_JSON").is_some() {
        println!(
            "metrics snapshots appended to $DBDEDUP_METRICS_JSON (final line is post-quiesce)"
        );
    }
}
