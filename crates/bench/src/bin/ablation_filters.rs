//! Ablation for §3.4 — avoiding unproductive dedup work.
//!
//! 1. **Size filter**: with the 40th-percentile cut-off, how much dedup
//!    effort is skipped and how much compression is lost (paper: ~40% of
//!    records skipped for 5–10% compression loss)?
//! 2. **Governor**: on an incompressible database, how quickly is dedup
//!    disabled and what does that save in index memory and time?

use dbdedup_bench::{engine_for, run_inserts, scale};
use dbdedup_core::{DedupEngine, EngineConfig};
use dbdedup_util::dist::SplitMix64;
use dbdedup_util::fmt::{format_bytes, format_ratio};
use dbdedup_util::ids::RecordId;
use dbdedup_workloads::Wikipedia;
use std::time::Instant;

fn main() {
    let n = scale();
    println!("Ablation §3.4: size filter & governor ({n} inserts)\n");

    println!("-- size-based filter (Wikipedia) --");
    dbdedup_bench::header(&["config", "ratio", "bypassed", "elapsed"]);
    for (name, quantile) in [("filter off", 0.0), ("p40 filter", 0.40), ("p60 filter", 0.60)] {
        let mut cfg = EngineConfig::default();
        cfg.min_benefit_bytes = 16;
        cfg.filter_quantile = quantile;
        cfg.filter_refresh_interval = 500;
        let mut e = engine_for(cfg);
        let t0 = Instant::now();
        let r = run_inserts(&mut e, "wikipedia", Wikipedia::insert_only(n, 42));
        dbdedup_bench::row(&[
            name.to_string(),
            format_ratio(r.metrics.dedup_only_ratio()),
            format!("{}/{n}", r.metrics.bypassed_size),
            format!("{:.2}s", t0.elapsed().as_secs_f64()),
        ]);
    }

    println!("\n-- dedup governor (incompressible random blobs) --");
    dbdedup_bench::header(&["config", "index mem", "elapsed", "disabled at"]);
    for (name, min_inserts) in [("governor@200", 200u64), ("governor off", u64::MAX)] {
        let mut cfg = EngineConfig::default();
        cfg.min_benefit_bytes = 16;
        cfg.governor_min_inserts = min_inserts;
        cfg.filter_quantile = 0.0;
        let mut e = DedupEngine::open_temp(cfg).expect("engine");
        let mut rng = SplitMix64::new(7);
        let t0 = Instant::now();
        let mut disabled_at: Option<u64> = None;
        for i in 0..n as u64 {
            let blob: Vec<u8> = (0..8_192).map(|_| (rng.next_u64() & 0xff) as u8).collect();
            e.insert("blobs", RecordId(i), &blob).expect("insert");
            if disabled_at.is_none() && e.governor_disabled("blobs") {
                disabled_at = Some(i);
            }
        }
        let m = e.metrics();
        dbdedup_bench::row(&[
            name.to_string(),
            format_bytes(m.index_bytes as u64),
            format!("{:.2}s", t0.elapsed().as_secs_f64()),
            disabled_at.map_or("never".to_string(), |i| format!("insert {i}")),
        ]);
    }
    println!("\npaper: both guards trade negligible compression for large overhead savings");
}
