//! Table 2 — analytic cost model of the three encoding schemes, plus the
//! empirically simulated values from the chain manager.
//!
//! Paper (chain of N records, base size S_b ≫ delta size S_d):
//!
//! | scheme          | storage                 | worst retrievals | writebacks       |
//! | backward        | S_b + (N−1)S_d          | N                | N                |
//! | version jumping | N/H·S_b + (N−N/H)·S_d   | H                | N − N/H          |
//! | hop             | S_b + (N−1)S_d          | H + log_H N      | N + N·H/(H−1)²   |

use dbdedup_encoding::analysis::{backward_cost, hop_cost, simulate, version_jumping_cost};
use dbdedup_encoding::EncodingPolicy;

fn main() {
    let n = 200u64;
    let h = 16u64;
    let sb = 16_384.0;
    let sd = 256.0;
    println!("Table 2: encoding schemes, N={n}, H={h}, Sb={sb}, Sd={sd}\n");

    dbdedup_bench::header(&["scheme", "storage(KB)", "worst-ret", "writebacks", "source"]);
    let rows = [
        ("backward", backward_cost(n, sb, sd)),
        ("version-jump", version_jumping_cost(n, h, sb, sd)),
        ("hop", hop_cost(n, h, sb, sd)),
    ];
    for (name, c) in rows {
        dbdedup_bench::row(&[
            name.to_string(),
            format!("{:.1}", c.storage_bytes / 1024.0),
            format!("{:.1}", c.worst_retrievals),
            format!("{:.0}", c.writebacks),
            "analytic".to_string(),
        ]);
    }

    let sims = [
        ("backward", simulate(EncodingPolicy::Backward, n)),
        ("version-jump", simulate(EncodingPolicy::VersionJumping { cluster: h }, n)),
        ("hop", simulate(EncodingPolicy::Hop { distance: h, max_levels: 3 }, n)),
    ];
    for (name, s) in sims {
        dbdedup_bench::row(&[
            name.to_string(),
            format!("{:.1}", s.storage_bytes(sb, sd) / 1024.0),
            format!("{}", s.worst_retrievals),
            format!("{}", s.writebacks),
            "simulated".to_string(),
        ]);
    }
    println!(
        "\npaper: hop matches backward's storage while bounding retrievals near version jumping"
    );
}
