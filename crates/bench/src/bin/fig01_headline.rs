//! Fig. 1 — the headline result: compression ratio and index memory for
//! Wikipedia data under five configurations: dbDedup (1 KiB, 64 B chunks),
//! trad-dedup (4 KiB, 64 B chunks), and Snappy-class block compression.
//!
//! Paper values (20 GB Wikipedia sample): dbDedup/64B 37× (61× with
//! Snappy) @ 45 MB index; trad-dedup/4KiB 2.3× (3.7×) @ 80 MB growing to
//! 15× (24×) @ 780 MB at 64 B; Snappy alone 1.6×.

use dbdedup_bench::{engine_for, run_inserts, scale};
use dbdedup_core::baseline::TradDedup;
use dbdedup_core::EngineConfig;
use dbdedup_storage::blockz;
use dbdedup_util::fmt::{format_bytes, format_ratio};
use dbdedup_workloads::{Op, Wikipedia};

fn main() {
    let n = scale();
    println!("Fig 1: Wikipedia compression ratio & index memory ({n} inserts)\n");
    dbdedup_bench::header(&["config", "dedup ratio", "+blockz", "index mem"]);

    // dbDedup at 1 KiB and 64 B chunks.
    for chunk in [1024usize, 64] {
        let mut cfg = EngineConfig::with_chunk_size(chunk);
        cfg.min_benefit_bytes = 16;
        let mut engine = engine_for(cfg);
        let r = run_inserts(&mut engine, "wikipedia", Wikipedia::insert_only(n, 42));
        // Post-dedup block compression: measure blockz on the post-dedup
        // stored stream by compressing stored payload sizes is not direct;
        // instead run the same config with block compression on.
        let mut cfg2 = EngineConfig::with_chunk_size(chunk);
        cfg2.min_benefit_bytes = 16;
        cfg2.block_compression = true;
        let mut engine2 = engine_for(cfg2);
        let r2 = run_inserts(&mut engine2, "wikipedia", Wikipedia::insert_only(n, 42));
        dbdedup_bench::row(&[
            format!("dbDedup/{}", if chunk >= 1024 { "1KB" } else { "64B" }),
            format_ratio(r.metrics.storage_ratio()),
            format_ratio(r2.metrics.storage_ratio()),
            format_bytes(r.metrics.index_bytes as u64),
        ]);
    }

    // Traditional chunk dedup at 4 KiB and 64 B.
    for chunk in [4096usize, 64] {
        let mut trad = TradDedup::new(chunk);
        let mut post_dedup_blockz_in = 0u64;
        let mut post_dedup_blockz_out = 0u64;
        for op in Wikipedia::insert_only(n, 42) {
            if let Op::Insert { id, data } = op {
                trad.ingest(id, &data);
                // Sample block compression on the unique portion (every
                // record's stored bytes approximate the post-dedup stream).
                if post_dedup_blockz_in < 32 << 20 {
                    post_dedup_blockz_in += data.len() as u64;
                    post_dedup_blockz_out += blockz::compress(&data).len() as u64;
                }
            }
        }
        let s = trad.stats();
        let blockz_factor = post_dedup_blockz_in as f64 / post_dedup_blockz_out as f64;
        dbdedup_bench::row(&[
            format!("trad/{}", if chunk >= 4096 { "4KB" } else { "64B" }),
            format_ratio(s.ratio()),
            format_ratio(s.ratio() * blockz_factor),
            format_bytes(trad.index_bytes() as u64),
        ]);
    }

    // Snappy-class block compression alone.
    let mut engine = engine_for(EngineConfig::compression_only());
    let r = run_inserts(&mut engine, "wikipedia", Wikipedia::insert_only(n, 42));
    dbdedup_bench::row(&[
        "blockz only".to_string(),
        format_ratio(r.metrics.storage_ratio()),
        format_ratio(r.metrics.storage_ratio()),
        format_bytes(0),
    ]);

    println!("\npaper: dbDedup/64B 37x (61x w/ Snappy) @45MB; trad/64B 15x @780MB; Snappy 1.6x");
}
