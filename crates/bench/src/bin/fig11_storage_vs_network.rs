//! Fig. 11 — storage vs network compression, normalized.
//!
//! dbDedup compresses the replication stream (forward encoding) and local
//! storage (backward encoding) from the same single encoding pass. Storage
//! compression trails network compression slightly — overlapped encodings
//! and lossy write-back evictions cost a little — but the paper measures
//! the gap under 5% on every dataset.

use dbdedup_bench::scale;
use dbdedup_core::EngineConfig;
use dbdedup_repl::ReplicaPair;
use dbdedup_util::fmt::format_ratio;
use dbdedup_workloads::{standard_suite, Op};

fn main() {
    let n = scale();
    println!("Fig 11: storage vs network compression, dbDedup 64 B chunks ({n} inserts)\n");
    dbdedup_bench::header(&["dataset", "storage", "network", "gap"]);

    for mut wl in standard_suite(n, 42) {
        let mut cfg = EngineConfig::with_chunk_size(64);
        cfg.min_benefit_bytes = 16;
        let mut pair = ReplicaPair::open_temp(cfg).expect("pair");
        let db = wl.db();
        let mut original = 0u64;
        for op in &mut wl {
            if let Op::Insert { id, data } = op {
                original += data.len() as u64;
                pair.primary.insert(db, id, &data).expect("insert");
            }
        }
        pair.sync().expect("sync");
        pair.flush_both().expect("flush");
        let stored = pair.primary.store().stored_payload_bytes();
        let net = pair.network_stats().bytes;
        let storage_ratio = original as f64 / stored as f64;
        let network_ratio = original as f64 / net as f64;
        let gap = 100.0 * (1.0 - storage_ratio / network_ratio);
        dbdedup_bench::row(&[
            wl.name().to_string(),
            format_ratio(storage_ratio),
            format_ratio(network_ratio),
            format!("{gap:+.1}%"),
        ]);
    }
    println!("\npaper: storage trails network by under 5% on all four datasets");
}
