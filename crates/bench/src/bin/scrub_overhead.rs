//! Scrub overhead — foreground insert latency with and without the
//! steady-state integrity scrub running in the maintenance tick.
//!
//! The scrubber is a budgeted background task: each maintenance tick may
//! verify at most `scrub_budget_bytes` of live frames (disk reads past
//! the block cache plus a decode to the raw root), so its foreground
//! impact is supposed to be a bounded tax, not a stall. This harness runs
//! one seeded revision-stream ingest twice — scrub disabled vs. the
//! default budget — pumping maintenance every 64 inserts as an embedder
//! would, and prints per-insert latency (p50/p99) alongside the `scrub.*`
//! progress gauges. The headline is the p99 column: a budget-bounded
//! scrub must not multiply tail latency.
//!
//! With `DBDEDUP_METRICS_JSON=path` set, the scrubbed run appends one
//! metrics-registry snapshot (including the `scrub.*` gauges) per
//! maintenance pump plus a final one, as a JSONL time series.

use dbdedup_bench::BenchReport;
use dbdedup_core::{DedupEngine, EngineConfig, MetricsSnapshot};
use dbdedup_maint::{MaintConfig, Maintainer};
use dbdedup_obs::Registry;
use dbdedup_util::dist::SplitMix64;
use dbdedup_util::ids::RecordId;
use dbdedup_util::stats::LogHistogram;
use std::time::Instant;

fn engine() -> DedupEngine {
    let mut cfg = EngineConfig::default();
    cfg.min_benefit_bytes = 16;
    DedupEngine::open_temp(cfg).expect("temp engine")
}

/// A single revision stream: each record is the previous one with a few
/// small mutations, so the store holds long delta chains — the expensive
/// case for scrub's decodability tier.
fn workload(seed: u64, total: usize) -> Vec<(RecordId, Vec<u8>)> {
    let mut rng = SplitMix64::new(seed);
    let mut doc: Vec<u8> = (0..8192).map(|_| (rng.next_u64() % 26 + 97) as u8).collect();
    (0..total)
        .map(|i| {
            if i > 0 {
                for _ in 0..5 {
                    let at = rng.next_index(doc.len() - 50);
                    for b in doc.iter_mut().skip(at).take(40) {
                        *b = (rng.next_u64() % 26 + 97) as u8;
                    }
                }
            }
            (RecordId(i as u64), doc.clone())
        })
        .collect()
}

struct RunOutcome {
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
    metrics: MetricsSnapshot,
}

/// Ingests the workload with maintenance pumped every 64 inserts, the
/// in-tick scrub capped at `scrub_budget` bytes (0 disables it).
fn run(ops: &[(RecordId, Vec<u8>)], scrub_budget: u64) -> RunOutcome {
    let metrics_path = (scrub_budget > 0)
        .then(|| std::env::var_os("DBDEDUP_METRICS_JSON").map(std::path::PathBuf::from))
        .flatten();
    let mut e = engine();
    let mut mcfg = MaintConfig::default();
    mcfg.scrub_budget_bytes = scrub_budget;
    let mut m = Maintainer::new(mcfg);
    let mut latency = LogHistogram::new();
    let start = Instant::now();
    let mut last_pump = Instant::now();
    for (i, (id, data)) in ops.iter().enumerate() {
        let t0 = Instant::now();
        e.insert("bench", *id, data).expect("insert");
        latency.record(t0.elapsed().as_nanos() as u64);
        if (i + 1) % 64 == 0 {
            let dt = last_pump.elapsed().as_secs_f64();
            last_pump = Instant::now();
            m.pump(&mut e, dt, 32).expect("pump");
            if let Some(p) = &metrics_path {
                dbdedup_bench::emit_metrics_line(&e, p).expect("metrics emission");
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    e.flush_all_writebacks().expect("flush");
    if let Some(p) = &metrics_path {
        dbdedup_bench::emit_metrics_line(&e, p).expect("metrics emission");
    }
    let metrics = e.metrics();
    assert_eq!(metrics.scrub_corrupt, 0, "a healthy store must scrub clean");
    assert_eq!(metrics.scrub_unhealable, 0);
    RunOutcome {
        throughput: ops.len() as f64 / elapsed,
        p50_us: latency.quantile(0.50) as f64 / 1_000.0,
        p99_us: latency.quantile(0.99) as f64 / 1_000.0,
        metrics,
    }
}

fn main() {
    let total = (dbdedup_bench::scale() / 4).max(256);
    println!("scrub overhead: {total} revisions, maintenance pumped every 64 inserts\n");
    dbdedup_bench::header(&[
        "config",
        "ops/s",
        "p50(us)",
        "p99(us)",
        "scrub.verified",
        "scrub.passes",
    ]);

    let ops = workload(0x5C2B_0BED, total);
    let baseline = run(&ops, 0);
    let scrubbed = run(&ops, MaintConfig::default().scrub_budget_bytes);
    for (name, r) in [("scrub-off", &baseline), ("scrub-on", &scrubbed)] {
        dbdedup_bench::row(&[
            name.to_string(),
            format!("{:.0}", r.throughput),
            format!("{:.1}", r.p50_us),
            format!("{:.1}", r.p99_us),
            r.metrics.scrub_verified.to_string(),
            r.metrics.scrub_passes.to_string(),
        ]);
    }

    assert_eq!(baseline.metrics.scrub_verified, 0, "budget 0 must disable the scrub");
    assert!(scrubbed.metrics.scrub_verified > 0, "the scrubbed run must make progress");
    let overhead = scrubbed.p99_us / baseline.p99_us.max(1e-9);
    println!(
        "\nin-tick scrub verified {} frames ({} full passes) for a {:.2}x insert p99 \
         ({:.1}us -> {:.1}us)",
        scrubbed.metrics.scrub_verified,
        scrubbed.metrics.scrub_passes,
        overhead,
        baseline.p99_us,
        scrubbed.p99_us
    );
    if std::env::var_os("DBDEDUP_METRICS_JSON").is_some() {
        println!("metrics snapshots appended to $DBDEDUP_METRICS_JSON (scrubbed run only)");
    }

    let mut report = BenchReport::new("scrub_overhead");
    report.meta_mut().set_u64("revisions", total as u64);
    report.meta_mut().set_f64("insert_p99_ratio", overhead);
    for (name, r) in [("scrub-off", &baseline), ("scrub-on", &scrubbed)] {
        let mut reg = Registry::new();
        reg.set_f64("throughput_ops_per_s", r.throughput);
        reg.set_f64("insert_p50_us", r.p50_us);
        reg.set_f64("insert_p99_us", r.p99_us);
        reg.set_u64("scrub_verified", r.metrics.scrub_verified);
        reg.set_u64("scrub_passes", r.metrics.scrub_passes);
        report.push_row(name, reg);
    }
    let path = report.write().expect("bench json");
    println!("machine-readable report: {}", path.display());
}
