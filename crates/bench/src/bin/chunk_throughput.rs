//! Chunk/sketch hot-path throughput: the fast gear scanner vs the
//! paper's Rabin scan vs the scalar gear fallback.
//!
//! Three micro-measurements per chunker kind over the same corpus —
//! chunk-only, sketch-only (chunking precomputed), and the fused
//! chunk+sketch pass `InsertPreparer::prepare` runs per insert — plus the
//! fused pass fanned out over 1/2/4 worker threads (each worker owns a
//! disjoint slice of the record stream, the shape `ParallelIngest` uses).
//! The headline number is the single-worker chunk+sketch speedup of
//! `gear` over `rabin`: the fast path's ≥ 3× target from the tiered
//! optimisation plan. A final engine-integrated section runs real inserts
//! with per-operation tracing and reports the `stage.chunk` /
//! `stage.sketch` histograms, tying the micro numbers to the histograms
//! operators actually see.
//!
//! Boundary correctness is *not* this harness's job: byte-equivalence of
//! fast and scalar scanning is enforced by
//! `crates/chunker/tests/boundary_diff.rs` and `tests/differential.rs`
//! independently of timing.

use dbdedup_bench::{header, row, scale, BenchReport};
use dbdedup_chunker::{ChunkerConfig, ChunkerKind, ContentChunker, SketchExtractor};
use dbdedup_core::{DedupEngine, EngineConfig};
use dbdedup_obs::{Registry, Stage};
use dbdedup_util::dist::SplitMix64;
use dbdedup_util::ids::RecordId;
use std::time::Instant;

const KINDS: [(ChunkerKind, &str); 3] = [
    (ChunkerKind::Rabin, "rabin"),
    (ChunkerKind::Gear, "gear"),
    (ChunkerKind::GearScalar, "gear_scalar"),
];

/// Record stream: text-like documents (the dedup-friendly shape the paper
/// targets) with a minority of incompressible blobs, ~8 KiB each.
fn records(seed: u64, n: usize) -> Vec<Vec<u8>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            if i % 8 == 7 {
                (0..8 * 1024).map(|_| rng.next_u64() as u8).collect()
            } else {
                let mut d = Vec::with_capacity(9 * 1024);
                while d.len() < 8 * 1024 {
                    let w = rng.next_u64() % 900;
                    d.extend_from_slice(format!("rec{w} field{w} body text. ").as_bytes());
                }
                d
            }
        })
        .collect()
}

fn mib(records: &[Vec<u8>]) -> f64 {
    records.iter().map(|r| r.len()).sum::<usize>() as f64 / (1 << 20) as f64
}

/// MiB/s of `f` over the corpus, best of `reps` passes (dodges cold-cache
/// and scheduler noise on shared CI hardware).
fn throughput(corpus: &[Vec<u8>], reps: usize, mut f: impl FnMut(&[u8])) -> f64 {
    let total = mib(corpus);
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        for r in corpus {
            f(r);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    total / best
}

/// Fused chunk+sketch over `workers` threads, each owning an interleaved
/// share of the corpus. Returns aggregate MiB/s (wall clock of the
/// slowest worker).
fn fused_parallel(corpus: &[Vec<u8>], kind: ChunkerKind, workers: usize, reps: usize) -> f64 {
    let ex =
        SketchExtractor::new(ContentChunker::with_kind(ChunkerConfig::with_avg(1024), kind), 8);
    let total = mib(corpus);
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for w in 0..workers {
                let ex = ex.clone();
                s.spawn(move || {
                    let mut chunks = Vec::new();
                    for r in corpus.iter().skip(w).step_by(workers) {
                        chunks.clear();
                        ex.chunker().chunk_into(r, &mut chunks);
                        std::hint::black_box(ex.extract_from_chunks(r, &chunks));
                    }
                });
            }
        });
        best = best.min(t0.elapsed().as_secs_f64());
    }
    total / best
}

struct KindRow {
    chunk: f64,
    sketch: f64,
    fused1: f64,
    fused2: f64,
    fused4: f64,
}

fn measure_kind(corpus: &[Vec<u8>], kind: ChunkerKind, reps: usize) -> KindRow {
    let chunker = ContentChunker::with_kind(ChunkerConfig::with_avg(1024), kind);
    let ex = SketchExtractor::new(chunker.clone(), 8);

    let mut buf = Vec::new();
    let chunk = throughput(corpus, reps, |r| {
        buf.clear();
        chunker.chunk_into(r, &mut buf);
        std::hint::black_box(buf.len());
    });

    // Sketch-only: chunking precomputed per record so only feature
    // hashing + streaming top-K selection is on the clock.
    let prechunked: Vec<_> = corpus.iter().map(|r| chunker.chunk(r)).collect();
    let total = mib(corpus);
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        for (r, c) in corpus.iter().zip(&prechunked) {
            std::hint::black_box(ex.extract_from_chunks(r, c));
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let sketch = total / best;

    KindRow {
        chunk,
        sketch,
        fused1: fused_parallel(corpus, kind, 1, reps),
        fused2: fused_parallel(corpus, kind, 2, reps),
        fused4: fused_parallel(corpus, kind, 4, reps),
    }
}

/// Engine-integrated stage view: real inserts with every operation
/// traced, reporting the chunk/sketch stage histograms for `kind`.
fn engine_stages(corpus: &[Vec<u8>], kind: ChunkerKind) -> (Registry, u64, u64) {
    let mut cfg = EngineConfig::default();
    cfg.chunker_kind = kind;
    cfg.trace_sample_every = 1; // every insert lands in the histograms
    let mut engine = DedupEngine::open_temp(cfg).expect("engine");
    for (i, r) in corpus.iter().enumerate() {
        engine.insert("bench", RecordId(i as u64), r).expect("insert");
    }
    let stages = engine.stage_timings();
    let mut reg = Registry::new();
    reg.set_histogram("stage.chunk_ns", stages.get(Stage::Chunk));
    reg.set_histogram("stage.sketch_ns", stages.get(Stage::Sketch));
    (reg, stages.get(Stage::Chunk).quantile(0.50), stages.get(Stage::Sketch).quantile(0.50))
}

fn main() {
    let n = scale().max(200);
    let reps = 3;
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let corpus = records(0xC4A6, n);
    println!(
        "Chunk/sketch hot-path throughput ({n} records, {:.1} MiB, avg chunk 1 KiB, K=8)",
        mib(&corpus)
    );
    println!(
        "note: machine reports {cores} available core(s); the 2/4-worker rows need\n\
         real cores to scale. The headline gear-vs-rabin speedup is single-worker\n\
         and core-count-independent.\n"
    );

    let mut bench = BenchReport::new("chunk_throughput");
    bench.meta_mut().set_u64("records", n as u64);
    bench.meta_mut().set_u64("cores", cores as u64);

    header(&["kind", "chunk MiB/s", "sketch MiB/s", "chunk+sketch w1", "w2", "w4"]);
    let mut fused_by_kind = [0f64; 3];
    let mut chunk_by_kind = [0f64; 3];
    for (i, (kind, name)) in KINDS.iter().enumerate() {
        let m = measure_kind(&corpus, *kind, reps);
        fused_by_kind[i] = m.fused1;
        chunk_by_kind[i] = m.chunk;
        let mut reg = Registry::new();
        reg.set_f64("chunk_mib_s", m.chunk);
        reg.set_f64("sketch_mib_s", m.sketch);
        reg.set_f64("fused_mib_s_w1", m.fused1);
        reg.set_f64("fused_mib_s_w2", m.fused2);
        reg.set_f64("fused_mib_s_w4", m.fused4);
        bench.push_row(name, reg);
        row(&[
            (*name).into(),
            format!("{:.0}", m.chunk),
            format!("{:.0}", m.sketch),
            format!("{:.0}", m.fused1),
            format!("{:.0}", m.fused2),
            format!("{:.0}", m.fused4),
        ]);
    }

    let chunk_speedup = chunk_by_kind[1] / chunk_by_kind[0];
    let fused_speedup = fused_by_kind[1] / fused_by_kind[0];
    bench.meta_mut().set_f64("gear_vs_rabin_chunk_speedup", chunk_speedup);
    bench.meta_mut().set_f64("gear_vs_rabin_fused_speedup", fused_speedup);
    bench
        .meta_mut()
        .set_f64("gear_fast_vs_scalar_fused_speedup", fused_by_kind[1] / fused_by_kind[2]);
    println!(
        "\ngear vs rabin: {chunk_speedup:.2}x chunk-only, {fused_speedup:.2}x chunk+sketch \
         (single worker; target >= 3x fused)"
    );

    // Engine-integrated stage histograms: the same speedup must be
    // visible in the `stage.chunk` timings real inserts record.
    println!("\nengine-integrated stage timings (trace_sample_every=1):");
    header(&["kind", "stage.chunk p50 us", "stage.sketch p50 us"]);
    for (kind, name) in [(ChunkerKind::Rabin, "rabin"), (ChunkerKind::Gear, "gear")] {
        let (reg, chunk_p50, sketch_p50) = engine_stages(&corpus, kind);
        bench.push_row(&format!("engine_{name}"), reg);
        row(&[
            name.into(),
            format!("{:.1}", chunk_p50 as f64 / 1e3),
            format!("{:.1}", sketch_p50 as f64 / 1e3),
        ]);
    }

    bench.write().expect("write BENCH_chunk_throughput.json");
}
