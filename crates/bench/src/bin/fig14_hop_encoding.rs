//! Fig. 14 — hop encoding versus version jumping across hop distances,
//! on a real 200-revision Wikipedia chain: compression ratio (normalized
//! to full backward encoding), worst-case source retrievals, and number
//! of writebacks.
//!
//! This experiment compares *encoding policies*, so the encode chain is
//! driven directly (each revision's delta source is its predecessor, as
//! the versioning ground truth dictates); engine-level source-selection
//! noise would otherwise blur the comparison. Real byte-level deltas are
//! computed for every writeback — including the long-range hop-upgrade
//! deltas whose growth with hop distance is the interesting cost.
//!
//! Paper: version jumping loses 60–90% of the compression (reference
//! versions stay raw); hop encoding stays within ~10% of backward while
//! its worst-case retrievals track version jumping's.

use dbdedup_delta::DbDeltaEncoder;
use dbdedup_encoding::{ChainManager, EncodingPolicy};
use dbdedup_util::ids::RecordId;
use dbdedup_workloads::wikipedia::revision_chain;

struct Outcome {
    ratio: f64,
    worst_retrievals: usize,
    writebacks: u64,
}

fn run(policy: EncodingPolicy, chain: &[Vec<u8>]) -> Outcome {
    let enc = DbDeltaEncoder::default();
    let mut m = ChainManager::new(policy);
    let n = chain.len();
    // stored[i] = bytes currently on disk for revision i.
    let mut stored: Vec<usize> = chain.iter().map(Vec::len).collect();
    let mut writebacks = 0u64;

    let mut plans = vec![m.start_chain(RecordId(0))];
    for i in 1..n {
        plans.push(m.append(RecordId(i as u64), RecordId(i as u64 - 1)));
    }
    for plan in plans {
        for wb in plan.writebacks {
            let t = wb.target.get() as usize;
            let b = wb.base.get() as usize;
            // Backward delta: reconstruct `target` from `base`.
            let delta = enc.encode(&chain[b], &chain[t]);
            let enc_len = delta.encoded_len();
            if enc_len < chain[t].len() {
                stored[t] = enc_len;
                m.commit_writeback(wb);
                writebacks += 1;
            }
        }
    }

    let original: usize = chain.iter().map(Vec::len).sum();
    let total: usize = stored.iter().sum();
    let worst =
        (0..n).map(|i| m.retrievals_for(RecordId(i as u64)).expect("tracked")).max().unwrap_or(0);
    Outcome { ratio: original as f64 / total as f64, worst_retrievals: worst, writebacks }
}

fn main() {
    let chain = revision_chain(200, 42);
    println!("Fig 14: hop encoding vs version jumping, 200-revision chain\n");

    let backward = run(EncodingPolicy::Backward, &chain);
    println!(
        "backward encoding reference: ratio {:.1}x, worst retrievals {}, writebacks {}\n",
        backward.ratio, backward.worst_retrievals, backward.writebacks
    );

    dbdedup_bench::header(&["H", "scheme", "norm. ratio", "worst-ret", "writebacks"]);
    for h in [4u64, 8, 12, 16, 20, 24, 28, 32] {
        let hop = run(EncodingPolicy::Hop { distance: h, max_levels: 3 }, &chain);
        let vj = run(EncodingPolicy::VersionJumping { cluster: h }, &chain);
        dbdedup_bench::row(&[
            format!("{h}"),
            "hop".to_string(),
            format!("{:.3}", hop.ratio / backward.ratio),
            format!("{}", hop.worst_retrievals),
            format!("{}", hop.writebacks),
        ]);
        dbdedup_bench::row(&[
            format!("{h}"),
            "vjump".to_string(),
            format!("{:.3}", vj.ratio / backward.ratio),
            format!("{}", vj.worst_retrievals),
            format!("{}", vj.writebacks),
        ]);
    }
    println!("\npaper: hop ~0.9-1.0 of backward's ratio; vjump 0.1-0.4; retrievals comparable");
}
