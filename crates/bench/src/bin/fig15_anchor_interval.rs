//! Fig. 15 — delta-compression optimization: compression ratio and
//! encoding throughput versus the anchor interval, against the classic
//! xDelta baseline, on Wikipedia revision pairs.
//!
//! Paper: interval 16 ≈ xDelta; interval 64 (default) is ~80% faster than
//! xDelta at ~7% compression loss; 128 adds ~10% speed for ~15% loss.

use dbdedup_delta::{xdelta_compress, DbDeltaConfig, DbDeltaEncoder};
use dbdedup_workloads::wikipedia::revision_chain;
use std::time::Instant;

fn main() {
    let chain = revision_chain(120, 42);
    let pairs: Vec<(&[u8], &[u8])> =
        chain.windows(2).map(|w| (w[0].as_slice(), w[1].as_slice())).collect();
    let total_target: u64 = pairs.iter().map(|(_, t)| t.len() as u64).sum();
    // Repeat passes so timings are stable.
    let reps = (200_000_000 / total_target.max(1)).clamp(1, 200) as usize;

    println!(
        "Fig 15: anchor interval sweep, {} revision pairs x{reps} passes ({} MB target data)\n",
        pairs.len(),
        total_target * reps as u64 / (1 << 20),
    );
    dbdedup_bench::header(&["encoder", "comp. ratio", "throughput", "vs xDelta"]);

    // xDelta baseline.
    let t0 = Instant::now();
    let mut xdelta_bytes = 0u64;
    for _ in 0..reps {
        xdelta_bytes = 0;
        for (s, t) in &pairs {
            xdelta_bytes += xdelta_compress(s, t).encoded_len() as u64;
        }
    }
    let xdelta_secs = t0.elapsed().as_secs_f64();
    let xdelta_tput = (total_target * reps as u64) as f64 / xdelta_secs / (1 << 20) as f64;
    dbdedup_bench::row(&[
        "xDelta".to_string(),
        format!("{:.1}x", total_target as f64 / xdelta_bytes as f64),
        format!("{xdelta_tput:.0} MB/s"),
        "1.00x".to_string(),
    ]);

    for interval in [16usize, 32, 64, 128] {
        let enc = DbDeltaEncoder::new(DbDeltaConfig::with_interval(interval));
        let t0 = Instant::now();
        let mut bytes = 0u64;
        for _ in 0..reps {
            bytes = 0;
            for (s, t) in &pairs {
                bytes += enc.encode(s, t).encoded_len() as u64;
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        let tput = (total_target * reps as u64) as f64 / secs / (1 << 20) as f64;
        dbdedup_bench::row(&[
            format!("anchor {interval}"),
            format!("{:.1}x", total_target as f64 / bytes as f64),
            format!("{tput:.0} MB/s"),
            format!("{:.2}x", tput / xdelta_tput),
        ]);
    }
    println!("\npaper: anchor 64 ≈ +80% throughput for ~7% ratio loss vs xDelta");
}
