//! Tiered feature index — dedup ratio and insert latency against a
//! **fixed** index memory budget while the record count grows 100×.
//!
//! The paper sizes its cuckoo index for the working set (§3.1.2); this
//! harness asks what happens when the data outgrows that budget. Three
//! configurations run the same seeded workload at 1×/10×/100× scale:
//!
//! - `unlimited` — the paper config: the whole index stays in memory.
//! - `tiered`    — the fixed budget with cold entries spilled into
//!   immutable on-disk runs behind a Bloom prefilter: the dedup ratio
//!   should decay gracefully as more lookups go cold.
//! - `evict`     — the same budget with spilling disabled: pure LRU
//!   eviction, the cliff the tiered index exists to avoid.
//!
//! The workload interleaves revisions across many independent chains, so
//! by the time a chain's next revision arrives its source features have
//! been pushed out of a too-small hot tier — exactly the access pattern
//! that separates "spilled but findable" from "evicted and gone".

use dbdedup_bench::BenchReport;
use dbdedup_core::{DedupEngine, EngineConfig};
use dbdedup_obs::Registry;
use dbdedup_util::dist::SplitMix64;
use dbdedup_util::ids::RecordId;
use dbdedup_util::stats::LogHistogram;
use std::time::Instant;

/// Fixed hot-tier budget every bounded config runs under (≈ 2.7k
/// feature entries at 6 accounted bytes each).
const HOT_BUDGET: usize = 16 << 10;
/// Revisions per chain; the chain count is what scales 100×.
const VERSIONS: usize = 8;

struct RunResult {
    records: u64,
    ratio: f64,
    insert_ns: LogHistogram,
    spills: u64,
    runs: u64,
    evictions: u64,
    cold_hits: u64,
    bloom_fp: f64,
}

fn engine(budget: Option<usize>, spill: bool) -> DedupEngine {
    let mut cfg = EngineConfig::default();
    cfg.min_benefit_bytes = 16;
    cfg.index_hot_budget_bytes = budget;
    cfg.index_spill_to_disk = spill;
    DedupEngine::open_temp(cfg).expect("temp engine")
}

fn mutate(doc: &mut [u8], rng: &mut SplitMix64) {
    for _ in 0..4 {
        let at = rng.next_index(doc.len().saturating_sub(40).max(1));
        for b in doc.iter_mut().skip(at).take(32) {
            *b = (rng.next_u64() % 26 + 97) as u8;
        }
    }
}

/// Round-robin revisions over `chains` independent documents: revision
/// `k` of every chain lands before revision `k+1` of any, so the reuse
/// distance equals the chain count and a too-small hot tier has lost the
/// source features by the time they are needed again.
fn run(chains: usize, budget: Option<usize>, spill: bool) -> RunResult {
    let mut e = engine(budget, spill);
    let mut rng = SplitMix64::new(0x71E2);
    let mut docs: Vec<Vec<u8>> = (0..chains)
        .map(|_| (0..4096).map(|_| (rng.next_u64() % 26 + 97) as u8).collect())
        .collect();
    let mut insert_ns = LogHistogram::new();
    let mut id = 0u64;
    for _ in 0..VERSIONS {
        for doc in docs.iter_mut() {
            mutate(doc, &mut rng);
            let t0 = Instant::now();
            e.insert("bench", RecordId(id), doc).expect("insert");
            insert_ns.record(t0.elapsed().as_nanos() as u64);
            id += 1;
            // A virtual idle window per batch keeps the modeled device's
            // queue (which writebacks, cold probes and spills submit
            // against) drained, so the overload governor measures the
            // index, not an artificially saturated disk.
            if id.is_multiple_of(64) {
                e.pump(0.5, 32).expect("pump");
            }
        }
    }
    // Backward encoding parks the old version's delta in the write-back
    // cache; the storage ratio only lands once those flush.
    e.flush_all_writebacks().expect("final flush");
    let m = e.metrics();
    RunResult {
        records: id,
        ratio: m.storage_ratio(),
        insert_ns,
        spills: m.index_tier.spills,
        runs: m.index_tier.runs,
        evictions: m.index_tier.evictions,
        cold_hits: m.index_tier.cold_hits,
        bloom_fp: m.index_tier.observed_fp_rate(),
    }
}

fn main() {
    // 100× growth on top of the base chain count; `DBDEDUP_SCALE`
    // (default 2000) divides down so the full sweep stays tractable.
    let base_chains = (dbdedup_bench::scale() / 160).max(4);
    let budget = HOT_BUDGET;
    println!(
        "tiered index: fixed {budget}-byte hot budget, {VERSIONS} revisions/chain, \
         chains ×1/×10/×100\n"
    );
    dbdedup_bench::header(&[
        "config", "records", "ratio", "p50", "p99", "spills", "runs", "evict", "cold_hit",
    ]);

    let mut report = BenchReport::new("index_tiering");
    report.meta_mut().set_u64("hot_budget_bytes", budget as u64);
    report.meta_mut().set_u64("versions_per_chain", VERSIONS as u64);
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for scale in [1usize, 10, 100] {
        let chains = base_chains * scale;
        let configs = [
            ("unlimited", None, true),
            ("tiered", Some(budget), true),
            ("evict", Some(budget), false),
        ];
        for (name, cfg_budget, spill) in configs {
            let r = run(chains, cfg_budget, spill);
            let label = format!("{name}/x{scale}");
            dbdedup_bench::row(&[
                label.clone(),
                r.records.to_string(),
                format!("{:.2}", r.ratio),
                format!("{:.1}", r.insert_ns.quantile(0.50) as f64 / 1000.0),
                format!("{:.1}", r.insert_ns.quantile(0.99) as f64 / 1000.0),
                r.spills.to_string(),
                r.runs.to_string(),
                r.evictions.to_string(),
                r.cold_hits.to_string(),
            ]);
            let mut reg = Registry::new();
            reg.set_u64("records", r.records);
            reg.set_f64("dedup_ratio", r.ratio);
            reg.set_u64("spills", r.spills);
            reg.set_u64("runs", r.runs);
            reg.set_u64("evictions", r.evictions);
            reg.set_u64("cold_hits", r.cold_hits);
            reg.set_f64("bloom_observed_fp_rate", r.bloom_fp);
            reg.set_histogram("insert_ns", &r.insert_ns);
            report.push_row(&label, reg);
            ratios.push((label, r.ratio));
        }
    }

    // The headline: at 100× the tiered config must retain far more of
    // the dedup ratio than pure eviction. Retention can exceed 100% —
    // past its fixed capacity the bare cuckoo table clock-evicts
    // destructively, while spilled runs keep those entries findable.
    let at = |label: &str| ratios.iter().find(|(l, _)| l == label).map(|(_, r)| *r).unwrap_or(1.0);
    let retention_tiered = at("tiered/x100") / at("unlimited/x100");
    let retention_evict = at("evict/x100") / at("unlimited/x100");
    println!(
        "\nratio retained at 100x vs unlimited: tiered {:.0}%, evict-only {:.0}% \
         (graceful decay vs the eviction cliff)",
        retention_tiered * 100.0,
        retention_evict * 100.0
    );
    report.meta_mut().set_f64("ratio_retention_tiered_x100", retention_tiered);
    report.meta_mut().set_f64("ratio_retention_evict_x100", retention_evict);
    let path = report.write().expect("bench json");
    println!("machine-readable report: {}", path.display());
}
