//! Criterion: delta compression — the anchor-interval ablation behind
//! Fig. 15, plus re-encode (Algorithm 2) and decode costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbdedup_delta::{reencode, xdelta_compress, DbDeltaConfig, DbDeltaEncoder};
use dbdedup_workloads::wikipedia::revision_chain;
use std::hint::black_box;

fn pair() -> (Vec<u8>, Vec<u8>) {
    let mut chain = revision_chain(2, 11);
    let b = chain.pop().expect("two");
    let a = chain.pop().expect("two");
    (a, b)
}

fn bench_encode(c: &mut Criterion) {
    let (src, tgt) = pair();
    let mut g = c.benchmark_group("delta_encode");
    g.throughput(Throughput::Bytes(tgt.len() as u64));
    g.bench_function("xdelta", |b| {
        b.iter(|| black_box(xdelta_compress(black_box(&src), black_box(&tgt))));
    });
    for interval in [16usize, 64, 128] {
        let enc = DbDeltaEncoder::new(DbDeltaConfig::with_interval(interval));
        g.bench_with_input(BenchmarkId::new("anchors", interval), &(), |b, ()| {
            b.iter(|| black_box(enc.encode(black_box(&src), black_box(&tgt))));
        });
    }
    g.finish();
}

fn bench_reencode_and_decode(c: &mut Criterion) {
    let (src, tgt) = pair();
    let enc = DbDeltaEncoder::default();
    let fwd = enc.encode(&src, &tgt);
    let mut g = c.benchmark_group("delta_transform");
    g.throughput(Throughput::Bytes(tgt.len() as u64));
    // The claim behind two-way encoding: re-encode ≪ a second compression.
    g.bench_function("reencode_fwd_to_bwd", |b| {
        b.iter(|| black_box(reencode(black_box(&src), black_box(&fwd))));
    });
    g.bench_function("second_full_encode", |b| {
        b.iter(|| black_box(enc.encode(black_box(&tgt), black_box(&src))));
    });
    g.bench_function("decode_apply", |b| {
        b.iter(|| black_box(fwd.apply(black_box(&src)).expect("apply")));
    });
    let wire = fwd.encode();
    g.bench_function("wire_decode", |b| {
        b.iter(|| black_box(dbdedup_delta::Delta::decode(black_box(&wire)).expect("decode")));
    });
    g.finish();
}

criterion_group!(benches, bench_encode, bench_reencode_and_decode);
criterion_main!(benches);
