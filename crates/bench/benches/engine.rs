//! Criterion: end-to-end insert-path cost — the microbenchmark behind
//! Fig. 12's "negligible overhead" claim, comparing the full dbDedup
//! workflow against plain storage and block-compressed storage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbdedup_core::{DedupEngine, EngineConfig};
use dbdedup_util::ids::RecordId;
use dbdedup_workloads::{Op, Wikipedia};
use std::hint::black_box;

fn bench_insert_path(c: &mut Criterion) {
    let docs: Vec<Vec<u8>> = Wikipedia::insert_only(200, 21)
        .filter_map(|op| match op {
            Op::Insert { data, .. } => Some(data),
            _ => None,
        })
        .collect();
    let total: u64 = docs.iter().map(|d| d.len() as u64).sum();

    let mut g = c.benchmark_group("engine_ingest_200_revisions");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(total));
    type ConfigRow = (&'static str, fn() -> EngineConfig);
    let configs: [ConfigRow; 3] = [
        ("original", EngineConfig::no_dedup),
        ("dbdedup", || {
            let mut c = EngineConfig::default();
            c.min_benefit_bytes = 16;
            c
        }),
        ("blockz", EngineConfig::compression_only),
    ];
    for (name, mk) in configs {
        g.bench_with_input(BenchmarkId::new("config", name), &docs, |b, docs| {
            b.iter(|| {
                let mut e = DedupEngine::open_temp(mk()).expect("engine");
                for (i, d) in docs.iter().enumerate() {
                    e.insert("wikipedia", RecordId(i as u64), black_box(d)).expect("insert");
                }
                black_box(e.metrics().stored_bytes)
            });
        });
    }
    g.finish();
}

fn bench_read_path(c: &mut Criterion) {
    let docs: Vec<Vec<u8>> = Wikipedia::insert_only(100, 22)
        .filter_map(|op| match op {
            Op::Insert { data, .. } => Some(data),
            _ => None,
        })
        .collect();
    let mut cfg = EngineConfig::default();
    cfg.min_benefit_bytes = 16;
    let mut e = DedupEngine::open_temp(cfg).expect("engine");
    for (i, d) in docs.iter().enumerate() {
        e.insert("wikipedia", RecordId(i as u64), d).expect("insert");
    }
    e.flush_all_writebacks().expect("flush");

    let mut g = c.benchmark_group("engine_read");
    // Chain heads read raw; early records decode through the chain.
    g.bench_function("latest_raw", |b| {
        b.iter(|| black_box(e.read(RecordId(99)).expect("read")));
    });
    g.bench_function("oldest_decoded", |b| {
        b.iter(|| black_box(e.read(RecordId(0)).expect("read")));
    });
    g.finish();
}

criterion_group!(benches, bench_insert_path, bench_read_path);
criterion_main!(benches);
