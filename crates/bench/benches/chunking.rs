//! Criterion: content-defined chunking and sketch extraction throughput.
//!
//! Feature extraction is on the insert path, so its cost bounds dbDedup's
//! ingest overhead (Fig. 12's "negligible throughput impact" relies on
//! this being memory-bandwidth class).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbdedup_chunker::{ChunkerConfig, ContentChunker, SketchExtractor};
use dbdedup_workloads::wikipedia::revision_chain;
use std::hint::black_box;

fn bench_chunking(c: &mut Criterion) {
    let data = revision_chain(1, 7).pop().expect("one revision");
    let mut g = c.benchmark_group("chunking");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for avg in [64usize, 1024, 4096] {
        let chunker = ContentChunker::new(ChunkerConfig::with_avg(avg));
        g.bench_with_input(BenchmarkId::new("cdc", avg), &data, |b, d| {
            let mut out = Vec::new();
            b.iter(|| {
                chunker.chunk_into(black_box(d), &mut out);
                black_box(out.len())
            });
        });
    }
    g.finish();
}

fn bench_sketch(c: &mut Criterion) {
    let data = revision_chain(1, 8).pop().expect("one revision");
    let mut g = c.benchmark_group("sketch");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for avg in [64usize, 1024] {
        let ex = SketchExtractor::new(ContentChunker::new(ChunkerConfig::with_avg(avg)), 8);
        g.bench_with_input(BenchmarkId::new("top8", avg), &data, |b, d| {
            b.iter(|| black_box(ex.extract(black_box(d))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_chunking, bench_sketch);
criterion_main!(benches);
