//! Criterion: hash primitive throughput — the MurmurHash-vs-SHA-1 trade
//! of §3.1.1 and the rolling hashes on the chunking/anchor hot paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dbdedup_util::hash::adler32::RollingAdler32;
use dbdedup_util::hash::murmur3::murmur3_x64_128;
use dbdedup_util::hash::rabin::{RabinTables, RollingRabin};
use dbdedup_util::hash::sha1::sha1;
use std::hint::black_box;

fn bench_block_hashes(c: &mut Criterion) {
    let data = vec![0xabu8; 64 << 10];
    let mut g = c.benchmark_group("block_hash_64k");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("murmur3_x64_128", |b| {
        b.iter(|| black_box(murmur3_x64_128(black_box(&data), 0)));
    });
    g.bench_function("sha1", |b| {
        b.iter(|| black_box(sha1(black_box(&data))));
    });
    g.finish();
}

fn bench_rolling(c: &mut Criterion) {
    let data: Vec<u8> = (0..64 << 10).map(|i| (i * 31 % 256) as u8).collect();
    let mut g = c.benchmark_group("rolling_64k");
    g.throughput(Throughput::Bytes(data.len() as u64));
    let tables = RabinTables::new(48);
    g.bench_function("rabin_w48", |b| {
        b.iter(|| {
            let mut r = RollingRabin::new(&tables);
            let mut acc = 0u64;
            for &x in &data {
                r.roll(x);
                acc ^= r.hash();
            }
            black_box(acc)
        });
    });
    g.bench_function("adler32_w16", |b| {
        b.iter(|| {
            let mut r = RollingAdler32::new(16);
            let mut acc = 0u32;
            for &x in &data {
                r.roll(x);
                acc ^= r.hash();
            }
            black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_block_hashes, bench_rolling);
criterion_main!(benches);
