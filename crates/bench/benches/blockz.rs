//! Criterion: blockz (Snappy stand-in) compress/decompress throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dbdedup_storage::blockz;
use dbdedup_util::dist::SplitMix64;
use dbdedup_workloads::wikipedia::revision_chain;
use std::hint::black_box;

fn bench_blockz(c: &mut Criterion) {
    let text = revision_chain(1, 3).pop().expect("one revision");
    let mut rng = SplitMix64::new(4);
    let random: Vec<u8> = (0..text.len()).map(|_| (rng.next_u64() & 0xff) as u8).collect();

    let mut g = c.benchmark_group("blockz");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("compress_text", |b| {
        b.iter(|| black_box(blockz::compress(black_box(&text))));
    });
    g.bench_function("compress_random", |b| {
        b.iter(|| black_box(blockz::compress(black_box(&random))));
    });
    let packed = blockz::compress(&text);
    g.bench_function("decompress_text", |b| {
        b.iter(|| black_box(blockz::decompress(black_box(&packed)).expect("valid")));
    });
    g.finish();
}

criterion_group!(benches, bench_blockz);
criterion_main!(benches);
