//! Criterion: feature-index operations — the fused lookup+insert on the
//! dedup hot path, compared with the exact-dedup chunk index it replaces.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dbdedup_index::exact::{ChunkLocation, ExactChunkIndex};
use dbdedup_index::{CuckooConfig, CuckooFeatureIndex};
use dbdedup_util::dist::SplitMix64;
use dbdedup_util::hash::sha1::sha1;
use std::hint::black_box;

fn bench_cuckoo(c: &mut Criterion) {
    let mut g = c.benchmark_group("feature_index");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("cuckoo_lookup_insert_10k", |b| {
        b.iter(|| {
            let mut idx = CuckooFeatureIndex::new(CuckooConfig {
                initial_buckets: 4096,
                ..Default::default()
            });
            let mut rng = SplitMix64::new(1);
            for i in 0..n {
                black_box(idx.lookup_insert(rng.next_u64(), i as u32));
            }
            idx.len()
        });
    });
    g.bench_function("cuckoo_hot_feature_10k", |b| {
        // Repeated features: the candidate-list + LRU-eviction path.
        b.iter(|| {
            let mut idx = CuckooFeatureIndex::default();
            for i in 0..n {
                black_box(idx.lookup_insert(0xfeed_0000_0000_0000 | (i % 16) << 32, i as u32));
            }
            idx.len()
        });
    });
    g.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_index");
    let chunks: Vec<[u8; 20]> = {
        let mut rng = SplitMix64::new(2);
        (0..10_000).map(|_| sha1(&rng.next_u64().to_le_bytes())).collect()
    };
    g.throughput(Throughput::Elements(chunks.len() as u64));
    g.bench_function("sha1_check_insert_10k", |b| {
        b.iter(|| {
            let mut idx = ExactChunkIndex::new();
            for (i, d) in chunks.iter().enumerate() {
                black_box(
                    idx.check_insert(*d, ChunkLocation { record: i as u64, offset: 0, len: 64 }),
                );
            }
            idx.len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cuckoo, bench_exact);
criterion_main!(benches);
