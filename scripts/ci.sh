#!/usr/bin/env bash
# Tier-1 verification gate. Everything here must pass before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> ci.sh: all green"
