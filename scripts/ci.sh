#!/usr/bin/env bash
# Tier-1 verification gate. Everything here must pass before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

# --test-threads=4 keeps multiple test binaries' worth of engine/pipeline
# threads alive concurrently, so the parallel ingest path is exercised
# under real thread contention even on small CI machines.
echo "==> cargo test -q -- --test-threads=4"
cargo test -q -- --test-threads=4

# Deterministic replication simulator over the fixed CI seed sweep
# (tests/sim_harness.rs). A failure prints the seed; re-running that seed
# replays the exact schedule.
echo "==> sim-smoke"
cargo test -q --test sim_harness

# Differential equivalence smoke (tests/differential.rs): ParallelIngest
# at 4 workers over the fixed seed 0xD1FF must produce byte-identical
# store segments, oplog bytes, and metric counters to the serial engine.
# Timing-independent — meaningful on any core count.
echo "==> differential-smoke"
cargo test -q --test differential smoke_fixed_seed_four_workers

# Metrics-registry schema round-trip (crates/core/tests/metrics_schema.rs):
# the JSON export parses with the in-repo parser, every registry field
# appears exactly once, and the legacy key set is still a subset.
echo "==> metrics-schema"
cargo test -q -p dbdedup-core --test metrics_schema

# Maintenance tier: lint the crate at -D warnings and run the property
# sweep (churn → quiesce byte-equality, tombstone scrub, crash sweep).
echo "==> maint-smoke"
cargo clippy -p dbdedup-maint -- -D warnings
cargo test -q -p dbdedup-maint

# Degradation loop: fixed-seed convergence-parity property (degraded
# burst → quiesce must equal a never-degraded run byte-for-byte,
# oplog-silently) plus the rewrite crash sweep, with the maint crate
# lint-clean at -D warnings (already enforced by maint-smoke above).
echo "==> rededup-smoke"
cargo test -q -p dbdedup-maint --test rededup_props
cargo test -q --test fault_injection rededup_rewrite_crash_sweep

# Integrity scrubber: fixed-seed bit-rot sweep (crates/maint/tests/
# scrub_props.rs) — flip every byte of a small store, require scrub-and-
# heal to converge to byte parity with a never-corrupted control, detect
# every live-frame flip, stay oplog-silent, and escalate typed when no
# repair source exists — plus the degraded-record salvage test.
echo "==> scrub-smoke"
cargo test -q -p dbdedup-maint --test scrub_props
cargo test -q --test fault_injection bitflip_on_degraded

# Operator surface: boot a real engine plus StatusServer on an ephemeral
# port and scrape it over TCP (tests/obs_endpoint.rs) — /metrics must
# cover every registry key exactly once with JSON/Prometheus value
# agreement under name sanitization, /health must flip Ready→Degraded→
# Ready through the overload gate, and /ready must gate 503 when every
# replica link is partitioned. Plus the obs::json parser edge sweep and
# the flight-recorder determinism property in the sim.
echo "==> obs-smoke"
cargo test -q --test obs_endpoint
cargo test -q -p dbdedup-obs --test json_edge
cargo test -q -p dbdedup-repl --lib sim::tests::flight_recorder_dump_is_byte_stable_across_same_seed_runs

# Tiered feature index: clippy-clean index crate, the Bloom/tiered
# property suites, the end-to-end tiering tests (<=1 cold probe per
# lookup, budgeted oplog-silent merges, quarantine-and-rebuild after run
# corruption, maintainer/health integration), and the fixed-seed
# differential smoke proving an unlimited budget is byte-identical to
# the pure in-memory cuckoo index.
echo "==> index-smoke"
cargo clippy -q -p dbdedup-index -- -D warnings
cargo test -q -p dbdedup-index
cargo test -q --test index_tiering
cargo test -q --test index_tiering unlimited_budget_is_byte_identical_to_pure_in_memory_index

# Fast-chunking differential suite: clippy-clean chunker crate, then the
# boundary-equivalence harness over its fixed seeds — Gear ≡ GearScalar
# boundary sets and sketches on every input class, the Rabin default
# pinned to pre-refactor golden hashes, the chunker property sweep over
# every kind, and the end-to-end gear-vs-scalar ingest byte-identity
# tests (serial + 4-worker parallel). A failure prints the repro seed.
echo "==> chunk-smoke"
cargo clippy -q -p dbdedup-chunker -- -D warnings
cargo test -q -p dbdedup-chunker
cargo test -q --test differential gear

echo "==> ci.sh: all green"
